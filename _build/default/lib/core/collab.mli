(** Collaborative version cleaning (§3.4, Figure 9).

    When vCutter wants to logically delete a version from a chain at the
    same moment vSorter wants to insert a newer version into that chain,
    both race on a per-chain flag with an atomic test-and-set instead of
    a chain latch. Whoever installs its footprint first wins and is
    responsible for deleting the dead version:

    - if {b vSorter} wins it performs both tasks (delete, then insert);
    - if {b vCutter} wins it deletes and fixes up, and vSorter —
      discovering the cutter's footprint — spin-waits for the cutter's
      completion mark before doing its own insertion.

    The invariant is that the dead version is deleted by {e exactly} the
    winner, never twice and never zero times. This module implements the
    protocol over [Atomic] so that the real multi-domain tests can hammer
    it; the discrete-event engines call it too (trivially uncontended
    there). *)

type t

val create : unit -> t
(** One [t] arbitrates one cleaning episode: a specific dead version
    that vCutter wants to delete while an insertion into the same chain
    may be in flight. Create a fresh instance per episode. *)

val sorter : t -> delete:(unit -> unit) -> insert:(unit -> unit) -> [ `Did_both | `Inserted_after_cutter ]
(** vSorter's side: race for the flag; run [delete] only on a win; run
    [insert] in all cases (after the cutter finished, on a loss). The
    flag is released afterwards so the chain can host later races. *)

val cutter : t -> delete:(unit -> unit) -> fixup:(unit -> unit) -> [ `Won | `Lost ]
(** vCutter's side: on a win, delete the dead version and fix broken
    links, then publish completion; on a loss return immediately —
    the sorter took over the deletion (vCutter must not block, it is
    "battling with numerous foreground transactions"). *)

val races_lost_by_sorter : t -> int
(** How often the sorter had to spin-wait (observability for tests). *)
