type t = { chains : (int, Chain.t) Hashtbl.t }

let create () = { chains = Hashtbl.create 4096 }
let find t ~rid = Hashtbl.find_opt t.chains rid

let get_or_create t ~rid =
  match Hashtbl.find_opt t.chains rid with
  | Some c -> c
  | None ->
      let c = Chain.create rid in
      Hashtbl.replace t.chains rid c;
      c

let chain_count t = Hashtbl.length t.chains
let iter t f = Hashtbl.iter (fun _ c -> f c) t.chains
let total_live_versions t = Hashtbl.fold (fun _ c acc -> acc + Chain.live_length c) t.chains 0
let max_live_chain t = Hashtbl.fold (fun _ c acc -> max acc (Chain.live_length c)) t.chains 0

let chain_length_histogram t =
  let h = Histogram.create () in
  iter t (fun c -> Histogram.add h (Chain.live_length c));
  h

let clear t = Hashtbl.reset t.chains
