(* Flag values: the "winner constant" (free) plus the two footprints and
   the cutter's completion mark. *)
let free = 0
let sorter_footprint = 1
let cutter_footprint = 2
let cutter_done = 3

type t = { flag : int Atomic.t; sorter_waits : int Atomic.t }

let create () = { flag = Atomic.make free; sorter_waits = Atomic.make 0 }

let sorter t ~delete ~insert =
  if Atomic.compare_and_set t.flag free sorter_footprint then begin
    (* vSorter won: it is delegated the whole cleaning. The footprint
       stays — the episode is one-shot, so a late cutter must lose. *)
    delete ();
    insert ();
    `Did_both
  end
  else begin
    Atomic.incr t.sorter_waits;
    (* The cutter owns the version; wait for its completion mark. *)
    while Atomic.get t.flag <> cutter_done do
      Domain.cpu_relax ()
    done;
    insert ();
    `Inserted_after_cutter
  end

let cutter t ~delete ~fixup =
  if Atomic.compare_and_set t.flag free cutter_footprint then begin
    delete ();
    fixup ();
    Atomic.set t.flag cutter_done;
    `Won
  end
  else `Lost

let races_lost_by_sorter t = Atomic.get t.sorter_waits
