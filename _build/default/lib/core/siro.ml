type t = {
  rid : int;
  slot_bytes : int;
  mutable toggle : bool;
  mutable current : Version.t;
  mutable previous : Version.t option;
}

type update_result = { relocated : Version.t option }

let create ~rid ~bytes ~payload ~vs ~vs_time =
  let current =
    Version.make ~rid ~vs ~ve:Timestamp.infinity ~vs_time ~ve_time:max_int ~bytes ~payload
  in
  { rid; slot_bytes = bytes; toggle = false; current; previous = None }

let rid t = t.rid
let toggle t = t.toggle
let current t = t.current
let previous t = t.previous

let close v ~ve ~ve_time =
  Version.make ~rid:v.Version.rid ~vs:v.Version.vs ~ve ~vs_time:v.Version.vs_time ~ve_time
    ~bytes:v.Version.bytes ~payload:v.Version.payload

let update t ~vs ~vs_time ~payload ~bytes =
  if vs < t.current.Version.vs then invalid_arg "Siro.update: non-monotone writer";
  if vs = t.current.Version.vs then begin
    (* Same transaction updating its own record again: overwrite in
       place; visibility-wise only its final value exists. *)
    t.current <-
      Version.make ~rid:t.rid ~vs ~ve:Timestamp.infinity ~vs_time ~ve_time:max_int ~bytes
        ~payload;
    { relocated = None }
  end
  else begin
  let displaced = t.previous in
  t.previous <- Some (close t.current ~ve:vs ~ve_time:vs_time);
  t.current <-
    Version.make ~rid:t.rid ~vs ~ve:Timestamp.infinity ~vs_time ~ve_time:max_int ~bytes ~payload;
  t.toggle <- not t.toggle;
  { relocated = displaced }
  end

let abort_undo t ~t_aborted =
  if t.current.Version.vs = t_aborted then begin
    match t.previous with
    | Some prev ->
        (* Reopen the predecessor's visibility: it is the most recently
           committed version, so it becomes current again. *)
        t.current <- close prev ~ve:Timestamp.infinity ~ve_time:max_int;
        t.previous <- None;
        t.toggle <- not t.toggle
    | None -> invalid_arg "Siro.abort_undo: no predecessor to restore"
  end

let read_inrow t view =
  let visible v =
    Read_view.snapshot_read view ~vs:v.Version.vs ~ve:v.Version.ve
  in
  if visible t.current then Some t.current
  else match t.previous with Some p when visible p -> Some p | Some _ | None -> None

let inrow_bytes t = 2 * t.slot_bytes
