(** Off-row version store: hardened segments on stable storage.

    vCutter removes whole segments whose [\[v_min, v_max\]] descriptor
    falls inside a dead zone; the elapsed time between hardening and the
    cut is the {e cut delay} the paper measures in Figure 16. *)

type t

val create : unit -> t

val harden : t -> Segment.t -> now:Clock.time -> unit
(** Transition a buffered segment to stable storage. The segment must
    be non-empty. *)

val cut : t -> Segment.t -> now:Clock.time -> unit
(** Purge a hardened segment and record its cut delay. *)

val iter_hardened : t -> (Segment.t -> unit) -> unit
(** Visit surviving hardened segments, oldest hardening first. *)

val live_bytes : t -> int
val hardened_count : t -> int
(** Segments hardened over the store's lifetime. *)

val resident_count : t -> int
(** Segments currently hardened and not cut. *)

val cut_count : t -> int

val cut_delays : t -> (Vclass.t * Clock.time) list
(** Class and delay of each cut performed, oldest first. *)

val clear : t -> unit
(** Crash: drop everything (off-row versions never survive a restart,
    §3.5). Lifetime counters are preserved. *)
