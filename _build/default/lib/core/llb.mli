(** Location lookaside buffer (§3.2–3.3).

    Per-record chains of locators pointing at off-row versions, exposing
    head and tail for two-ended traversal. Purely in-memory: cleared on
    crash recovery together with version segments. *)

type t

val create : unit -> t
val find : t -> rid:int -> Chain.t option
val get_or_create : t -> rid:int -> Chain.t
val chain_count : t -> int
val iter : t -> (Chain.t -> unit) -> unit

val total_live_versions : t -> int
val max_live_chain : t -> int
val chain_length_histogram : t -> Histogram.t
(** Live lengths of all chains (records with no off-row version are not
    represented; callers add the in-row contribution). *)

val clear : t -> unit
