type t = {
  mutable segments : Segment.t Vec.t;
  mutable live_bytes : int;
  mutable hardened_count : int;
  mutable cut_count : int;
  delays : (Vclass.t * Clock.time) Vec.t;
}

let create () =
  { segments = Vec.create (); live_bytes = 0; hardened_count = 0; cut_count = 0; delays = Vec.create () }

let harden t seg ~now =
  if Segment.is_empty seg then invalid_arg "Version_store.harden: empty segment";
  Segment.harden seg ~now;
  Vec.push t.segments seg;
  t.live_bytes <- t.live_bytes + seg.Segment.used_bytes;
  t.hardened_count <- t.hardened_count + 1

let cut t seg ~now =
  if seg.Segment.state <> Segment.Hardened then
    invalid_arg "Version_store.cut: segment not hardened";
  Segment.mark_cut seg ~now;
  t.live_bytes <- t.live_bytes - seg.Segment.used_bytes;
  t.cut_count <- t.cut_count + 1;
  (match Segment.cut_delay seg with
  | Some d -> Vec.push t.delays (seg.Segment.cls, d)
  | None -> assert false);
  Vec.filter_in_place (fun s -> s.Segment.state = Segment.Hardened) t.segments

let iter_hardened t f =
  Vec.iter (fun s -> if s.Segment.state = Segment.Hardened then f s) t.segments

let live_bytes t = t.live_bytes
let hardened_count t = t.hardened_count

let resident_count t =
  Vec.fold_left (fun acc s -> if s.Segment.state = Segment.Hardened then acc + 1 else acc) 0 t.segments

let cut_count t = t.cut_count
let cut_delays t = Vec.to_list t.delays

let clear t =
  t.segments <- Vec.create ();
  t.live_bytes <- 0
