type config = {
  segment_bytes : int;
  vbuffer_bytes : int;
  classifier : Classifier.t;
  zone_refresh_period : Clock.time;
  store_cache_segments : int;
  classification : [ `Three_way | `Single_class ];
  pruning : [ `Dead_zones | `Oldest_active ];
}

let default_config =
  {
    segment_bytes = 64 * 1024;
    vbuffer_bytes = 8 * 1024 * 1024;
    classifier = Classifier.create ();
    zone_refresh_period = Clock.ms 2;
    store_cache_segments = 128;
    classification = `Three_way;
    pruning = `Dead_zones;
  }

type t = {
  config : config;
  txns : Txn_manager.t;
  llb : Llb.t;
  store : Version_store.t;
  store_cache : Buffer_pool.t;
  stats : Prune_stats.t;
  mutable zones : Zone_set.t;
  mutable zone_views : Read_view.t list;
  mutable llt_views : Read_view.t list;
  mutable last_refresh : Clock.time;
  mutable delta_llt_effective : Clock.time;
  open_segments : Segment.t option array;
  sealed : Segment.t Vec.t;
  seg_index : (int, Segment.t) Hashtbl.t;
  mutable next_seg_id : int;
  mutable zone_refreshes : int;
}

let create ?(config = default_config) txns =
  {
    config;
    txns;
    llb = Llb.create ();
    store = Version_store.create ();
    store_cache =
      Buffer_pool.create ~name:"version-store" ~capacity_blocks:config.store_cache_segments;
    stats = Prune_stats.create ();
    zones = Zone_set.of_txn_manager txns;
    zone_views = [];
    llt_views = [];
    last_refresh = 0;
    delta_llt_effective = config.classifier.Classifier.delta_llt;
    open_segments = Array.make Vclass.count None;
    sealed = Vec.create ();
    seg_index = Hashtbl.create 256;
    next_seg_id = 0;
    zone_refreshes = 0;
  }

let refresh_zones t ~now =
  t.zones <- Zone_set.of_txn_manager t.txns;
  t.zone_views <- Txn_manager.live_views t.txns;
  t.llt_views <- Txn_manager.llt_views t.txns ~now ~delta_llt:t.delta_llt_effective;
  t.last_refresh <- now;
  t.zone_refreshes <- t.zone_refreshes + 1

let maybe_refresh t ~now =
  if now - t.last_refresh >= t.config.zone_refresh_period then refresh_zones t ~now

let fresh_segment t ~cls ~now =
  let seg =
    Segment.create ~id:t.next_seg_id ~cls ~cap_bytes:t.config.segment_bytes ~now
  in
  Hashtbl.replace t.seg_index seg.Segment.id seg;
  t.next_seg_id <- t.next_seg_id + 1;
  seg

let drop_segment t seg = Hashtbl.remove t.seg_index seg.Segment.id
let find_segment t id = Hashtbl.find_opt t.seg_index id

let open_bytes t =
  Array.fold_left
    (fun acc -> function Some s -> acc + s.Segment.used_bytes | None -> acc)
    0 t.open_segments

let buffered_bytes t =
  open_bytes t + Vec.fold_left (fun acc s -> acc + s.Segment.used_bytes) 0 t.sealed

let pop_oldest_sealed t =
  if Vec.is_empty t.sealed then None
  else begin
    let seg = Vec.get t.sealed 0 in
    Vec.drop_front t.sealed 1;
    Some seg
  end

let space_bytes t = buffered_bytes t + Version_store.live_bytes t.store
