(** SIRO-versioning page slot (§3.3, §4.1).

    Each record occupies a slot holding the current version and one
    placeholder for the single in-row old version; a toggle bit says
    which physical half is current (no physical swap on update). When an
    update arrives while the placeholder is occupied, the displaced
    oldest in-row version ([v^{r,1->2}]) is relocated off-row — the
    moment vDriver inspects it for pruning and classification.

    Abort and crash undo are bit toggles (§3.5): the in-row pair always
    contains the most recently committed version, so rolling back an
    uncommitted update never touches off-row state. *)

type t

type update_result = {
  relocated : Version.t option;
      (** the displaced [v^{r,1->2}], to hand to vSorter; [None] while
          the placeholder was free *)
}

val create : rid:int -> bytes:int -> payload:int -> vs:Timestamp.t -> vs_time:Clock.time -> t
(** A freshly loaded record: current version only, placeholder empty. *)

val rid : t -> int
val toggle : t -> bool
val current : t -> Version.t
val previous : t -> Version.t option

val update :
  t -> vs:Timestamp.t -> vs_time:Clock.time -> payload:int -> bytes:int -> update_result
(** Install a new (possibly uncommitted) current version created by the
    transaction that began at [vs]. The old current becomes the in-row
    old version (its [ve] closes at [vs]); a previously held old version
    is returned for relocation. If [vs] equals the current version's
    creator (the same transaction updating its record again) the value
    is overwritten in place and nothing relocates. Raises
    [Invalid_argument] if [vs] is older than the current creator
    (single-writer per record is enforced by the engine's page
    latch). *)

val abort_undo : t -> t_aborted:Timestamp.t -> unit
(** Roll back an uncommitted update by [t_aborted]: the in-row old
    version becomes current again (its visibility reopens), the
    placeholder empties. No-op if the current version was not created
    by [t_aborted]. *)

val read_inrow : t -> Read_view.t -> Version.t option
(** The snapshot read for [view] if it is one of the (at most two)
    in-row versions. *)

val inrow_bytes : t -> int
(** Bytes the slot occupies: record plus placeholder (fixed footprint —
    SIRO pages never split). *)
