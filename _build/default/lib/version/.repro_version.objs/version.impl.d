lib/version/version.ml: Clock Format Timestamp
