lib/version/chain.mli: Read_view Timestamp Version
