lib/version/classifier.ml: Clock List Read_view Vclass Version
