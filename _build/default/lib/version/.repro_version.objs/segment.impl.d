lib/version/segment.ml: Chain Clock Timestamp Vclass Vec Version
