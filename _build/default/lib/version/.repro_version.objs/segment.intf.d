lib/version/segment.mli: Chain Clock Timestamp Vclass Vec
