lib/version/chain.ml: Format List Read_view Timestamp Version
