lib/version/vclass.mli: Format
