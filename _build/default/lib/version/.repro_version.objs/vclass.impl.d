lib/version/vclass.ml: Format
