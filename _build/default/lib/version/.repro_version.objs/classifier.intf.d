lib/version/classifier.mli: Clock Read_view Vclass Version
