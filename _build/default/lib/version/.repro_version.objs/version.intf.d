lib/version/version.mli: Clock Format Timestamp
