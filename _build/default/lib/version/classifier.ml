type t = { delta_hot : Clock.time; delta_llt : Clock.time }

let create ?(delta_hot = Clock.ms 50) ?(delta_llt = Clock.ms 50) () =
  if delta_hot <= 0 || delta_llt <= 0 then invalid_arg "Classifier.create: thresholds must be positive";
  { delta_hot; delta_llt }

let delta_llt_of_avg ~multiple ~avg_txn =
  if multiple <= 0 then invalid_arg "Classifier.delta_llt_of_avg";
  max (Clock.ms 1) (multiple * avg_txn)

let classify t ~llt_views (v : Version.t) =
  let pinned_by_llt =
    List.exists
      (fun view -> Read_view.snapshot_read view ~vs:v.Version.vs ~ve:v.Version.ve)
      llt_views
  in
  if pinned_by_llt then Vclass.Llt
  else if Version.update_interval v < t.delta_hot then Vclass.Hot
  else Vclass.Cold
