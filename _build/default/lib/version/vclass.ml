type t = Hot | Cold | Llt

let all = [ Hot; Cold; Llt ]
let count = 3
let to_index = function Hot -> 0 | Cold -> 1 | Llt -> 2

let of_index = function
  | 0 -> Hot
  | 1 -> Cold
  | 2 -> Llt
  | _ -> invalid_arg "Vclass.of_index"

let to_string = function Hot -> "HOT" | Cold -> "COLD" | Llt -> "LLT"
let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
