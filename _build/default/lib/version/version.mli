(** A committed record version.

    [vs]/[ve] follow the engine convention (§3.1): they are the *begin*
    timestamps of the transaction that created this version and of the
    one that created its successor ([Timestamp.infinity] while the
    version is still the newest). [vs_time]/[ve_time] are the simulated
    wall-clock counterparts, used by the classifier, whose thresholds
    ([delta_hot], [delta_llt]) are durations. *)

type t = {
  rid : int;  (** record identifier *)
  vs : Timestamp.t;
  ve : Timestamp.t;
  vs_time : Clock.time;
  ve_time : Clock.time;
  bytes : int;  (** payload footprint for space accounting *)
  payload : int;  (** opaque value; lets tests check reads return the right version *)
}

val make :
  rid:int ->
  vs:Timestamp.t ->
  ve:Timestamp.t ->
  vs_time:Clock.time ->
  ve_time:Clock.time ->
  bytes:int ->
  payload:int ->
  t

val update_interval : t -> Clock.time
(** [ve_time - vs_time]; the update interval the HOT/COLD split keys on. *)

val is_current : t -> bool
(** [ve = Timestamp.infinity]. *)

val pp : Format.formatter -> t -> unit
