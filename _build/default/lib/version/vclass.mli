(** Version classes (§3.3).

    vDriver separates versions with similar lifetimes into distinct
    clusters so that live versions pinned by LLTs never suspend the
    cleaning of dead versions in the other classes. *)

type t =
  | Hot  (** short update interval: [ve - vs < delta_hot] *)
  | Cold  (** longer update interval *)
  | Llt  (** snapshot read of at least one identified LLT *)

val all : t list
val count : int

val to_index : t -> int
(** Stable dense index in [\[0, count)], for per-class counter arrays. *)

val of_index : int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
