(** Version segment — the unit of batch pruning and cleaning (§3.3–3.4).

    A segment is a fixed-size byte range inside one version cluster. It
    fills with relocated versions while [In_buffer]; once full it is
    hardened to the version store (and may be dropped wholesale by the
    2nd, segment-level prune on the way). Hardened segments are cleaned
    by vCutter when their [VS descriptor] range [\[v_min, v_max\]] is
    covered by a single dead zone.

    [v_min]/[v_max] are the minimum visibility start and maximum
    visibility end over the versions stored — the paper's descriptor
    fields — taken from each node's commit-time prune interval. *)

type state = In_buffer | Hardened | Cut

type t = {
  id : int;
  cls : Vclass.t;
  cap_bytes : int;
  mutable used_bytes : int;
  nodes : Chain.node Vec.t;
  mutable vmin : Timestamp.t;
  mutable vmax : Timestamp.t;
  mutable state : state;
  created_at : Clock.time;
  mutable hardened_at : Clock.time option;
  mutable cut_at : Clock.time option;
}

val create : id:int -> cls:Vclass.t -> cap_bytes:int -> now:Clock.time -> t

val add : t -> Chain.node -> unit
(** Account a relocated version into this segment. Raises
    [Invalid_argument] if the segment is not [In_buffer] or would
    overflow. *)

val fits : t -> bytes:int -> bool
val is_empty : t -> bool
val version_count : t -> int

val live_count : t -> int
(** Versions not yet deleted from their chains. *)

val descriptor : t -> int * Timestamp.t * Timestamp.t
(** [(seg_id, v_min, v_max)] — the VS descriptor. Raises on an empty
    segment (an unfilled, empty segment has no descriptor; §5.2.6). *)

val compact : t -> unit
(** Drop nodes already deleted from their chains and recompute
    [used_bytes], [v_min] and [v_max] from the survivors. Used after the
    2nd (segment-level) prune, before hardening. Raises if not
    [In_buffer]. *)

val harden : t -> now:Clock.time -> unit
val mark_cut : t -> now:Clock.time -> unit

val cut_delay : t -> Clock.time option
(** Hardened-to-cut elapsed time — the Figure 16 metric. *)
