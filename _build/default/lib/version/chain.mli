(** Per-record locator chain (the LLB entry, §3.3–3.4).

    Off-row versions of a record form a doubly-linked chain from newest
    ([head]) to oldest ([tail]); the LLB keeps both ends so reads can
    approach a version from whichever side is closer.

    When vCutter purges a version segment, the versions it held are
    deleted from their chains. Deleting a run at either end just trims
    the chain, but deleting an interior run leaves a {e hole}: the two
    fragments stay reachable from head and tail respectively, so the
    representation invariant — {e every version that is a snapshot read
    of some live transaction is reachable} — still holds, and vDriver
    tolerates the hole lazily (the 1-hole state of Figure 8). A deletion
    that would create a second hole triggers the preemptive {e Fixup}
    action, which splices every deleted interior run and returns the
    chain to the 0-hole state, before any version can become orphaned. *)

type node = {
  version : Version.t;
  prune_lo : Timestamp.t;
      (** commit-time visibility start (creator's commit ts), set at
          relocation; dead-zone checks run in commit-time space *)
  prune_hi : Timestamp.t;  (** commit-time visibility end *)
  mutable seg_id : int;  (** segment currently holding the version *)
  mutable newer : node option;
  mutable older : node option;
  mutable deleted : bool;
}

type t

val create : int -> t
(** [create rid]. *)

val rid : t -> int
val head : t -> node option
val tail : t -> node option

val live_length : t -> int
(** Number of non-deleted versions in the chain. *)

val holes : t -> int
(** Interior deleted runs currently tolerated (0 or 1 by invariant). *)

val fixups : t -> int
(** How many Fixup actions this chain has performed. *)

val push_newest : t -> ?prune_interval:Timestamp.t * Timestamp.t -> Version.t -> seg_id:int -> node
(** Insert a freshly relocated version at the head. Its [vs] must be at
    least the previous head's [vs] (relocations arrive in order per
    record). [prune_interval] is the commit-time visibility interval
    used by dead-zone checks; it defaults to [(vs, ve)] for tests that
    work directly in the oracle world. *)

val delete_node : t -> node -> unit
(** vCutter's per-version cut. Marks the node deleted, trims end runs,
    and — if a second interior hole would appear — performs Fixup.
    Idempotent on already-deleted nodes. *)

val find_visible : t -> Read_view.t -> (node * int) option
(** Locate the snapshot read of this record for [view] among off-row
    versions, walking from the head and, if a hole interrupts the walk,
    retrying from the tail (Figure 8's two-ended traversal). Returns the
    node and the number of hops taken. *)

val reachable : t -> node -> bool
(** Can [node] be reached from the head or the tail without crossing a
    hole? Deleted nodes are never reachable. Used by invariant tests. *)

val live_versions : t -> Version.t list
(** Non-deleted versions, newest first (crosses holes; for tests and
    space accounting, not a traversal model). *)

val check_invariants : t -> (unit, string) result
(** Structural soundness: consistent links, [holes <= 1], ends not
    deleted, lengths consistent. *)
