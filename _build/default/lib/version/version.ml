type t = {
  rid : int;
  vs : Timestamp.t;
  ve : Timestamp.t;
  vs_time : Clock.time;
  ve_time : Clock.time;
  bytes : int;
  payload : int;
}

let make ~rid ~vs ~ve ~vs_time ~ve_time ~bytes ~payload =
  if vs >= ve then invalid_arg "Version.make: requires vs < ve";
  if bytes < 0 then invalid_arg "Version.make: negative size";
  { rid; vs; ve; vs_time; ve_time; bytes; payload }

let update_interval t =
  if t.ve = Timestamp.infinity then max_int else max 0 (t.ve_time - t.vs_time)

let is_current t = t.ve = Timestamp.infinity

let pp fmt t =
  if t.ve = Timestamp.infinity then Format.fprintf fmt "v[r%d %d,inf)" t.rid t.vs
  else Format.fprintf fmt "v[r%d %d,%d)" t.rid t.vs t.ve
