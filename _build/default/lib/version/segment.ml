type state = In_buffer | Hardened | Cut

type t = {
  id : int;
  cls : Vclass.t;
  cap_bytes : int;
  mutable used_bytes : int;
  nodes : Chain.node Vec.t;
  mutable vmin : Timestamp.t;
  mutable vmax : Timestamp.t;
  mutable state : state;
  created_at : Clock.time;
  mutable hardened_at : Clock.time option;
  mutable cut_at : Clock.time option;
}

let create ~id ~cls ~cap_bytes ~now =
  if cap_bytes <= 0 then invalid_arg "Segment.create: capacity must be positive";
  {
    id;
    cls;
    cap_bytes;
    used_bytes = 0;
    nodes = Vec.create ();
    vmin = max_int;
    vmax = min_int;
    state = In_buffer;
    created_at = now;
    hardened_at = None;
    cut_at = None;
  }

let fits t ~bytes = t.used_bytes + bytes <= t.cap_bytes
let is_empty t = Vec.is_empty t.nodes
let version_count t = Vec.length t.nodes

let add t node =
  if t.state <> In_buffer then invalid_arg "Segment.add: segment not in buffer";
  let v = node.Chain.version in
  if not (fits t ~bytes:v.Version.bytes) then invalid_arg "Segment.add: overflow";
  Vec.push t.nodes node;
  node.Chain.seg_id <- t.id;
  t.used_bytes <- t.used_bytes + v.Version.bytes;
  if node.Chain.prune_lo < t.vmin then t.vmin <- node.Chain.prune_lo;
  if node.Chain.prune_hi > t.vmax then t.vmax <- node.Chain.prune_hi

let live_count t =
  Vec.fold_left (fun acc n -> if n.Chain.deleted then acc else acc + 1) 0 t.nodes

let descriptor t =
  if is_empty t then invalid_arg "Segment.descriptor: empty segment";
  (t.id, t.vmin, t.vmax)

let compact t =
  if t.state <> In_buffer then invalid_arg "Segment.compact: segment not in buffer";
  Vec.filter_in_place (fun n -> not n.Chain.deleted) t.nodes;
  t.used_bytes <- 0;
  t.vmin <- max_int;
  t.vmax <- min_int;
  Vec.iter
    (fun n ->
      t.used_bytes <- t.used_bytes + n.Chain.version.Version.bytes;
      if n.Chain.prune_lo < t.vmin then t.vmin <- n.Chain.prune_lo;
      if n.Chain.prune_hi > t.vmax then t.vmax <- n.Chain.prune_hi)
    t.nodes

let harden t ~now =
  if t.state <> In_buffer then invalid_arg "Segment.harden: segment not in buffer";
  t.state <- Hardened;
  t.hardened_at <- Some now

let mark_cut t ~now =
  if t.state = Cut then invalid_arg "Segment.mark_cut: already cut";
  t.state <- Cut;
  t.cut_at <- Some now

let cut_delay t =
  match (t.hardened_at, t.cut_at) with
  | Some h, Some c -> Some (max 0 (c - h))
  | _, _ -> None
