(** Version classification (§3.3, Figure 7).

    Stage 1: a version that is the snapshot read of at least one
    {e identified} LLT goes to [VC_llt]. Identification is by age — a
    live transaction older than [delta_llt] — so a transaction still
    inside its {e vulnerability window} (younger than the threshold but
    destined to live long) is not consulted, and versions it pins are
    misclassified into HOT/COLD. That error and its cost (suspended
    cleaning of contaminated segments) are exactly what Figures 15–16
    measure.

    Stage 2: versions with update interval below [delta_hot] are [Hot],
    the rest [Cold]. *)

type t = {
  delta_hot : Clock.time;
  delta_llt : Clock.time;
}

val create : ?delta_hot:Clock.time -> ?delta_llt:Clock.time -> unit -> t
(** Defaults: [delta_hot] = 50 ms, [delta_llt] = 50 ms of simulated time. *)

val delta_llt_of_avg : multiple:int -> avg_txn:Clock.time -> Clock.time
(** "[delta_llt] is a multiple of an average transaction length". Never
    below 1 ms so a cold start cannot declare everyone an LLT. *)

val classify : t -> llt_views:Read_view.t list -> Version.t -> Vclass.t
(** [llt_views] must be the views of live transactions whose age
    exceeds [delta_llt] (see [Txn_manager.llt_views]). *)
