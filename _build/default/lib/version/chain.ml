type node = {
  version : Version.t;
  prune_lo : Timestamp.t;
  prune_hi : Timestamp.t;
  mutable seg_id : int;
  mutable newer : node option;
  mutable older : node option;
  mutable deleted : bool;
}

type t = {
  rid : int;
  mutable head : node option;
  mutable tail : node option;
  mutable live : int;
  mutable holes : int;
  mutable fixups : int;
}

let create rid = { rid; head = None; tail = None; live = 0; holes = 0; fixups = 0 }
let rid t = t.rid
let head t = t.head
let tail t = t.tail
let live_length t = t.live
let holes t = t.holes
let fixups t = t.fixups

let push_newest t ?prune_interval version ~seg_id =
  (match t.head with
  | Some h when h.version.Version.vs > version.Version.vs ->
      invalid_arg "Chain.push_newest: out-of-order relocation"
  | Some _ | None -> ());
  let prune_lo, prune_hi =
    match prune_interval with
    | Some (lo, hi) -> (lo, hi)
    | None -> (version.Version.vs, version.Version.ve)
  in
  let node =
    { version; prune_lo; prune_hi; seg_id; newer = None; older = t.head; deleted = false }
  in
  (match t.head with
  | Some h -> h.newer <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node;
  t.live <- t.live + 1;
  node

(* Physically unlink [node] from the list. *)
let unlink t node =
  (match node.newer with
  | Some n -> n.older <- node.older
  | None -> t.head <- node.older);
  (match node.older with
  | Some n -> n.newer <- node.newer
  | None -> t.tail <- node.newer);
  node.newer <- None;
  node.older <- None

(* Fixup: splice out every deleted interior node (Figure 8). *)
let fixup t =
  let rec walk = function
    | None -> ()
    | Some n ->
        let older = n.older in
        if n.deleted then unlink t n;
        walk older
  in
  walk t.head;
  t.holes <- 0;
  t.fixups <- t.fixups + 1

(* Trim a deleted run that reached an end of the chain. Any marked node
   encountered belonged to a formerly interior run that the end has now
   absorbed, so the hole count drops by one once the run is consumed. *)
let trim t which =
  let saw_marked = ref false in
  let current () = match which with `Head -> t.head | `Tail -> t.tail in
  let rec loop () =
    match current () with
    | Some n when n.deleted ->
        saw_marked := true;
        unlink t n;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if !saw_marked && t.holes > 0 then t.holes <- t.holes - 1

let delete_node t node =
  if not node.deleted then begin
    node.deleted <- true;
    t.live <- t.live - 1;
    let at_head = match t.head with Some h -> h == node | None -> false in
    let at_tail = match t.tail with Some l -> l == node | None -> false in
    if at_head || at_tail then begin
      unlink t node;
      (* The neighbouring run (if marked) is now exposed at the end. *)
      if at_head then trim t `Head;
      if at_tail then trim t `Tail
    end
    else begin
      (* Interior deletion: hole bookkeeping is purely local. *)
      let newer_deleted = match node.newer with Some n -> n.deleted | None -> false in
      let older_deleted = match node.older with Some n -> n.deleted | None -> false in
      (match (newer_deleted, older_deleted) with
      | false, false -> t.holes <- t.holes + 1 (* a fresh hole *)
      | true, true -> t.holes <- t.holes - 1 (* two runs merge *)
      | true, false | false, true -> () (* extends an existing run *));
      (* The state machine of §3.4: a single hole is tolerated; the
         moment a second one appears we preemptively fix all broken
         links. *)
      if t.holes > 1 then fixup t
    end
  end

type walk_result = Found of node * int | Miss | Hit_hole

let rec walk test dir node hops =
  match node with
  | None -> Miss (* clean full walk: version simply absent *)
  | Some n ->
      if n.deleted then Hit_hole (* this walk is inconclusive *)
      else if test n then Found (n, hops)
      else walk test dir (dir n) (hops + 1)

let find_visible t view =
  let test node =
    Read_view.snapshot_read view ~vs:node.version.Version.vs ~ve:node.version.Version.ve
  in
  match walk test (fun n -> n.older) t.head 0 with
  | Found (n, hops) -> Some (n, hops)
  | Miss -> None
  | Hit_hole -> (
      (* interrupted by the hole: approach from the other end *)
      match walk test (fun n -> n.newer) t.tail 0 with
      | Found (n, hops) -> Some (n, hops)
      | Miss | Hit_hole -> None)

let reachable t target =
  if target.deleted then false
  else begin
    let rec walk node dir =
      match node with
      | None -> false
      | Some n -> if n.deleted then false else n == target || walk (dir n) dir
    in
    walk t.head (fun n -> n.older) || walk t.tail (fun n -> n.newer)
  end

let live_versions t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (if n.deleted then acc else n.version :: acc) n.older
  in
  walk [] t.head

let check_invariants t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec count_live node acc =
    match node with None -> acc | Some n -> count_live n.older (if n.deleted then acc else acc + 1)
  in
  let rec count_holes node in_run acc =
    match node with
    | None -> acc
    | Some n ->
        if n.deleted then count_holes n.older true (if in_run then acc else acc + 1)
        else count_holes n.older false acc
  in
  let rec links_ok node =
    match node with
    | None -> true
    | Some n -> (
        match n.older with
        | None -> true
        | Some o -> (match o.newer with Some b -> b == n | None -> false) && links_ok n.older)
  in
  match (t.head, t.tail) with
  | None, Some _ | Some _, None -> fail "chain r%d: one end nil" t.rid
  | None, None ->
      if t.live = 0 && t.holes = 0 then Ok () else fail "chain r%d: empty but counts nonzero" t.rid
  | Some h, Some tl ->
      if h.deleted || tl.deleted then fail "chain r%d: deleted node at an end" t.rid
      else if not (links_ok t.head) then fail "chain r%d: inconsistent links" t.rid
      else begin
        let live = count_live t.head 0 in
        let holes = count_holes t.head false 0 in
        if live <> t.live then fail "chain r%d: live count %d <> %d" t.rid live t.live
        else if holes <> t.holes then fail "chain r%d: hole count %d <> %d" t.rid holes t.holes
        else if t.holes > 1 then fail "chain r%d: %d holes tolerated" t.rid t.holes
        else Ok ()
      end
