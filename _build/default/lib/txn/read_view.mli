(** Read views (MVCC snapshots expressed over begin timestamps).

    Engines that embed the *begin* timestamp of the updater in each
    version (MySQL, PostgreSQL) cannot compare commit times directly;
    instead each transaction captures the set of transactions active when
    it began. A creator transaction is "committed in this view" iff its
    begin timestamp precedes the view's horizon and is not among the
    actives — exactly the §3.1 formulation. *)

type t = {
  creator : Timestamp.t;  (** begin ts of the transaction owning the view *)
  high : Timestamp.t;  (** first ts assigned after view creation; ts >= high began later *)
  actives : Timestamp.t array;  (** sorted begin ts of live txns at creation (excluding creator) *)
}

val make : creator:Timestamp.t -> actives:Timestamp.t list -> high:Timestamp.t -> t
(** [actives] need not be sorted; it must not contain [creator] and all
    entries must be [< high]. *)

val committed_before : t -> Timestamp.t -> bool
(** [committed_before view ts]: had the transaction that began at [ts]
    already committed when this view was created? The creator itself
    counts as visible (its own writes). [Timestamp.infinity] is never
    committed. *)

val snapshot_read : t -> vs:Timestamp.t -> ve:Timestamp.t -> bool
(** Is a version whose creator began at [vs] and whose successor's
    creator began at [ve] ([Timestamp.infinity] if none) the snapshot
    read of its record for this view? Per §3.1: creator committed before
    the view, successor not. *)

val oldest_visible_horizon : t -> Timestamp.t
(** Every version whose [ve] is below this is invisible to the view —
    the classic "oldest active" purge criterion derives from the minimum
    of this over live views. *)
