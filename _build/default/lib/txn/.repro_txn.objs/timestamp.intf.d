lib/txn/timestamp.mli:
