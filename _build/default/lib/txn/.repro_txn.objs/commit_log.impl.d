lib/txn/commit_log.ml: Hashtbl Timestamp
