lib/txn/txn.mli: Clock Format Read_view Timestamp
