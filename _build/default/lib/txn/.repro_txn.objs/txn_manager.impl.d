lib/txn/txn_manager.ml: Commit_log Hashtbl List Read_view Timestamp Txn
