lib/txn/read_view.mli: Timestamp
