lib/txn/read_view.ml: Array Timestamp
