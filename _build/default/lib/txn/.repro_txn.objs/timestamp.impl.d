lib/txn/timestamp.ml:
