lib/txn/txn.ml: Clock Format Read_view Timestamp
