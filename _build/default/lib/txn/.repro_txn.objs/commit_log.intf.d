lib/txn/commit_log.mli: Timestamp
