lib/txn/txn_manager.mli: Clock Commit_log Read_view Timestamp Txn
