(** A transaction handle.

    The id doubles as the begin timestamp. [begin_time] is the simulated
    wall-clock start, used for LLT detection ([delta_llt] is a wall-time
    threshold in the paper, §3.3). *)

type state = Active | Committed | Aborted

type t = {
  tid : Timestamp.t;
  begin_time : Clock.time;
  view : Read_view.t;
  mutable state : state;
  mutable commit_ts : Timestamp.t option;  (** set on commit *)
  mutable reads : int;
  mutable writes : int;
}

val age : t -> now:Clock.time -> Clock.time
val is_active : t -> bool
val pp : Format.formatter -> t -> unit
