type t = {
  creator : Timestamp.t;
  high : Timestamp.t;
  actives : Timestamp.t array;
}

let make ~creator ~actives ~high =
  let actives = Array.of_list actives in
  Array.sort compare actives;
  Array.iter
    (fun ts ->
      if ts >= high then invalid_arg "Read_view.make: active ts >= high";
      if ts = creator then invalid_arg "Read_view.make: creator listed active")
    actives;
  { creator; high; actives }

let mem_sorted a x =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true else if a.(mid) < x then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length a)

let committed_before view ts =
  if ts = view.creator then true
  else if ts >= view.high then false
  else not (mem_sorted view.actives ts)

let snapshot_read view ~vs ~ve =
  committed_before view vs && not (committed_before view ve)

let oldest_visible_horizon view =
  if Array.length view.actives = 0 then min view.creator view.high
  else min view.creator view.actives.(0)
