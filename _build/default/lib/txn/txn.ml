type state = Active | Committed | Aborted

type t = {
  tid : Timestamp.t;
  begin_time : Clock.time;
  view : Read_view.t;
  mutable state : state;
  mutable commit_ts : Timestamp.t option;
  mutable reads : int;
  mutable writes : int;
}

let age t ~now = max 0 (now - t.begin_time)
let is_active t = t.state = Active

let pp fmt t =
  let state =
    match t.state with Active -> "active" | Committed -> "committed" | Aborted -> "aborted"
  in
  Format.fprintf fmt "T%d(%s)" t.tid state
