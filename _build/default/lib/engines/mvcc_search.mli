(** Visible-version search over a chain sorted by creator timestamp.

    Engines charge the {e simulated} cost of walking a chain
    (position-dependent, per §2.1), but the simulator itself locates the
    snapshot read by binary search so that reproducing a million-version
    chain does not cost a million host operations per read. First-
    updater-wins concurrency control keeps every chain ascending in
    creator timestamp, which makes "creator committed before the view"
    a prefix property (up to the short active window at the newest end,
    handled by a local fix-up). *)

val find_visible : view:Read_view.t -> len:int -> vs_of:(int -> Timestamp.t) -> int option
(** [find_visible ~view ~len ~vs_of] returns the index of the snapshot
    read among versions [0 .. len-1] ordered oldest to newest, where
    [vs_of i] is version [i]'s creator timestamp and version [i]'s end
    timestamp is [vs_of (i+1)] (infinity for the last). [None] when even
    the oldest version is invisible. *)
