type t = {
  tables : int;
  rows_per_table : int;
  record_bytes : int;
  page_bytes : int;
  fill_factor : float;
}

let default =
  { tables = 48; rows_per_table = 1000; record_bytes = 256; page_bytes = 8192; fill_factor = 0.7 }

let records t = t.tables * t.rows_per_table

let rid t ~table ~row =
  if table < 0 || table >= t.tables || row < 0 || row >= t.rows_per_table then
    invalid_arg "Schema.rid";
  (table * t.rows_per_table) + row

let valid_rid t r = r >= 0 && r < records t
