let write_conflict mgr (txn : Txn.t) ~current_vs =
  if current_vs = 0 || current_vs = txn.Txn.tid then false
  else if current_vs > txn.Txn.tid then true
  else
    match Commit_log.status (Txn_manager.commit_log mgr) current_vs with
    | None -> true (* still in flight: no-wait *)
    | Some (Commit_log.Committed_at cts) -> cts > txn.Txn.tid
    | Some (Commit_log.Aborted_at _) ->
        (* An aborted creator's version is rolled back synchronously;
           meeting one here would be an engine bug. Fail the write. *)
        true
