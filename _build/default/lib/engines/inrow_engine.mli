(** Vanilla in-row versioning engine (PostgreSQL-12 style, §2.1).

    Old versions live in the heap pages next to their records. Version
    lookup walks the chain {e from the oldest version}, so every read of
    a hot record pays the full chain length in CPU. A page overflowing
    with versions splits, stalling the page and generating redo. Garbage
    collection is a vacuum pass gated on the classic oldest-active
    boundary — which a single LLT pins, letting chains and heap bloat
    grow without bound (Figure 3a). *)

val create : ?costs:Costs.t -> ?vacuum_batch:int -> Schema.t -> Engine.t
(** [vacuum_batch] is the number of records one maintenance pass
    scans (default 4096). *)
