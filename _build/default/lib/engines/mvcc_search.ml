let find_visible ~view ~len ~vs_of =
  if len = 0 then None
  else begin
    let p i = Read_view.committed_before view (vs_of i) in
    if not (p 0) then None
    else begin
      (* Largest index whose creator is committed in this view: binary
         search on the prefix property... *)
      let lo = ref 0 and hi = ref (len - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if p mid then lo := mid else hi := mid - 1
      done;
      (* ...then a linear fix-up in case an active writer punched a hole
         just below newer committed versions. *)
      let i = ref !lo in
      while !i + 1 < len && p (!i + 1) do
        incr i
      done;
      Some !i
    end
  end
