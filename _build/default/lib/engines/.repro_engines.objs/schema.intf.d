lib/engines/schema.mli:
