lib/engines/siro_engine.mli: Costs Driver Engine Schema State
