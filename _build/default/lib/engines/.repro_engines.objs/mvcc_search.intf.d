lib/engines/mvcc_search.mli: Read_view Timestamp
