lib/engines/mvcc_search.ml: Read_view
