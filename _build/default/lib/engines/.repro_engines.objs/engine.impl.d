lib/engines/engine.ml: Clock Driver Histogram Txn Txn_manager
