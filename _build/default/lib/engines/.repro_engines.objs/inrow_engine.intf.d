lib/engines/inrow_engine.mli: Costs Engine Schema
