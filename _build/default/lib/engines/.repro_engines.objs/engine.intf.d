lib/engines/engine.mli: Clock Driver Histogram Txn Txn_manager
