lib/engines/siro_engine.ml: Array Buffer_pool Cc Costs Driver Engine Hashtbl Heap Histogram List Page Resource Schema Siro Timestamp Txn Txn_manager Vcutter Version Vsorter Wal
