lib/engines/cc.mli: Timestamp Txn Txn_manager
