lib/engines/inrow_engine.ml: Array Buffer_pool Cc Commit_log Costs Engine Hashtbl Heap Histogram List Mvcc_search Page Resource Schema Timestamp Txn Txn_manager Vec Wal
