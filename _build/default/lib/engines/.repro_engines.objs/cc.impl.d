lib/engines/cc.ml: Commit_log Txn Txn_manager
