lib/engines/offrow_engine.mli: Costs Engine Schema
