lib/engines/schema.ml:
