(** Engine with vDriver plugged in (SIRO-versioning, §3–§4).

    Heap pages keep each record plus exactly one in-row old version
    (fixed two-slot footprint: pages never split); every older version
    relocates through vSorter into classified version segments. Short
    transactions are served from the in-row pair under a brief latch;
    readers needing older versions go through the LLB and version-buffer
    layer {e without holding the page latch}, so LLTs cannot convoy hot
    pages. The [flavor] selects the host-engine persona: [`Pg] replaces
    PostgreSQL's in-row layout, [`Mysql] replaces InnoDB's undo chains
    and drops the rollback-segment giant latch by recycling undo logs at
    commit (§4.2). Functionally both flavors behave identically, as the
    paper observes of its two integrations. *)

val create :
  ?costs:Costs.t ->
  ?driver_config:State.config ->
  flavor:[ `Pg | `Mysql ] ->
  Schema.t ->
  Engine.t

val driver_exn : Engine.t -> Driver.t
(** The engine's vDriver instance. Raises if called on a vanilla
    engine. *)
