(** Vanilla off-row versioning engine (MySQL-8.0/InnoDB style, §2.1).

    The heap holds only current versions (fixed footprint: no page
    splits ever); old versions go to undo space as a roll-pointer chain.
    Version lookup walks the chain {e from the newest version while
    holding the page latch}, fetching undo pages through a buffer pool —
    an LLT reading deep into history turns every hot-page latch into a
    millisecond-scale convoy (Figure 3b). Undo-header bookkeeping rides
    a global rollback-segment latch (the "giant latch" vDriver's
    integration removes, §4.2/§5.2.1); undo tablespaces truncate
    abruptly when purge drains them, producing the paper's space
    sawtooth. *)

val create :
  ?costs:Costs.t ->
  ?purge_batch:int ->
  ?undo_pool_pages:int ->
  ?truncate_threshold_bytes:int ->
  ?gc:[ `Purge_prefix | `Interval_scan ] ->
  Schema.t ->
  Engine.t
(** [purge_batch]: records scanned per purge pass (default 4096).
    [undo_pool_pages]: undo buffer-pool capacity (default 512).
    [truncate_threshold_bytes]: allocated undo size beyond which a
    mostly-empty tablespace is truncated (default 4 MiB).
    [gc] selects the cleaner: [`Purge_prefix] is stock MySQL (reclaim
    below the oldest read view only); [`Interval_scan] is the
    HANA/Steam-style fine-grained collector of §2.2 — it scans whole
    version chains and removes {e any} dead version (complete w.r.t.
    Theorem 3.5), but pays undo-page I/O for the scan, which is the
    paper's argument for why eager interval GC does not transplant to
    disk-based engines. *)
