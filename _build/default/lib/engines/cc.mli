(** Write admission: snapshot-isolation first-committer-wins, no-wait.

    A transaction may install a new version only if the record's current
    version was committed before the writer's snapshot. Otherwise —
    current version uncommitted, or committed after the writer began —
    the writer must abort (the sysbench-style workload retries with a
    fresh transaction). This also keeps every version chain ascending in
    creator timestamp, which the engines' binary-search lookup relies
    on. *)

val write_conflict : Txn_manager.t -> Txn.t -> current_vs:Timestamp.t -> bool
