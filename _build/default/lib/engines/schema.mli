(** Table layout shared by all engines: [tables] x [rows_per_table]
    records of [record_bytes] each, addressed by a flat record id. *)

type t = {
  tables : int;
  rows_per_table : int;
  record_bytes : int;
  page_bytes : int;
  fill_factor : float;
}

val default : t
(** The paper's Figure 13 setup: 48 tables x 1000 records x 256 B,
    8 KiB pages, 0.7 fill factor. *)

val records : t -> int
val rid : t -> table:int -> row:int -> int
val valid_rid : t -> int -> bool
