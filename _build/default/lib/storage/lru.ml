(* Doubly-linked list threaded through a hashtable; most-recent at front. *)

type entry = { key : int; mutable prev : entry option; mutable next : entry option }

type t = {
  capacity : int;
  table : (int, entry) Hashtbl.t;
  mutable front : entry option;
  mutable back : entry option;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); front = None; back = None }

let capacity t = t.capacity
let size t = Hashtbl.length t.table
let mem t k = Hashtbl.mem t.table k

let detach t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.front <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.back <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.front;
  e.prev <- None;
  (match t.front with Some f -> f.prev <- Some e | None -> t.back <- Some e);
  t.front <- Some e

let touch t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      detach t e;
      push_front t e;
      `Hit
  | None ->
      let evicted =
        if Hashtbl.length t.table >= t.capacity then
          match t.back with
          | Some victim ->
              detach t victim;
              Hashtbl.remove t.table victim.key;
              Some victim.key
          | None -> None
        else None
      in
      let e = { key = k; prev = None; next = None } in
      Hashtbl.replace t.table k e;
      push_front t e;
      `Miss evicted

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      detach t e;
      Hashtbl.remove t.table k
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.front <- None;
  t.back <- None
