type t = { name : string; lru : Lru.t; mutable hits : int; mutable misses : int }

let create ~name ~capacity_blocks = { name; lru = Lru.create ~capacity:capacity_blocks; hits = 0; misses = 0 }
let name t = t.name

let access t ~block =
  match Lru.touch t.lru block with
  | `Hit ->
      t.hits <- t.hits + 1;
      `Hit
  | `Miss _ ->
      t.misses <- t.misses + 1;
      `Miss

let evict t ~block = Lru.remove t.lru block
let clear t = Lru.clear t.lru
let hits t = t.hits
let misses t = t.misses
let resident t = Lru.size t.lru
