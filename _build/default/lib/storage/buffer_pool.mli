(** Buffer pool: LRU residency over block ids with hit/miss accounting.

    One pool instance per storage area (heap, undo space, version
    store). A miss costs the caller one [io_latency] in the simulation;
    the pool only decides hit vs miss. *)

type t

val create : name:string -> capacity_blocks:int -> t
val name : t -> string

val access : t -> block:int -> [ `Hit | `Miss ]
(** Touch a block; loads it on miss (evicting LRU if full). *)

val evict : t -> block:int -> unit
(** Drop a block (e.g. its segment was cut). *)

val clear : t -> unit
val hits : t -> int
val misses : t -> int
val resident : t -> int
