type t = { mutable total : int; mutable records : int }

let create () = { total = 0; records = 0 }

let append t ~bytes =
  if bytes < 0 then invalid_arg "Wal.append: negative size";
  t.total <- t.total + bytes;
  t.records <- t.records + 1

let total_bytes t = t.total
let records t = t.records
