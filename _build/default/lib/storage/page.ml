type t = {
  id : int;
  cap_bytes : int;
  mutable used_bytes : int;
  mutable records : int;
  latch : Resource.t;
}

let create ~id ~cap_bytes =
  if cap_bytes <= 0 then invalid_arg "Page.create: capacity must be positive";
  { id; cap_bytes; used_bytes = 0; records = 0; latch = Resource.create (Printf.sprintf "page-%d" id) }

let free_bytes t = max 0 (t.cap_bytes - t.used_bytes)
let overflowed t = t.used_bytes > t.cap_bytes

let add_bytes t n =
  if n < 0 then invalid_arg "Page.add_bytes: negative";
  t.used_bytes <- t.used_bytes + n

let remove_bytes t n =
  if n < 0 || n > t.used_bytes then invalid_arg "Page.remove_bytes: bad amount";
  t.used_bytes <- t.used_bytes - n
