(** Redo-log volume accounting. Page splits in in-row engines "produce
    redo logs for capturing changes" (§2.1); we track the bytes so the
    cost shows up in the space metrics. *)

type t

val create : unit -> t
val append : t -> bytes:int -> unit
val total_bytes : t -> int
val records : t -> int
