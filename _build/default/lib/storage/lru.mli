(** LRU set over integer keys, for buffer-pool residency tracking. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int
val size : t -> int
val mem : t -> int -> bool

val touch : t -> int -> [ `Hit | `Miss of int option ]
(** Access a key: [`Hit] if resident (moves it to most-recent);
    [`Miss evicted] inserts it, reporting the evicted key if the set
    was full. *)

val remove : t -> int -> unit
val clear : t -> unit
