(** A heap data page: byte-budget accounting plus an exclusive latch.

    The latch is the contention point the paper's §2.1 analysis centres
    on — version-chain walks and in-place updates hold it, and its hold
    time growing with chain length is what collapses vanilla MySQL. *)

type t = {
  id : int;
  cap_bytes : int;
  mutable used_bytes : int;
  mutable records : int;
  latch : Resource.t;
}

val create : id:int -> cap_bytes:int -> t
val free_bytes : t -> int
val overflowed : t -> bool

val add_bytes : t -> int -> unit
(** May push [used_bytes] past capacity; the owner decides whether that
    triggers a split (in-row engines) or is forbidden (fixed layouts). *)

val remove_bytes : t -> int -> unit
(** Raises [Invalid_argument] when removing more than is used. *)
