(** Heap file: maps records to data pages and tracks in-row version
    bloat and page splits.

    Records are placed into pages up to a fill factor at load time.
    In-row engines then add old-version bytes to the owning page; an
    overflowing page is split — half its records (with their version
    bytes) move to a fresh page, redo is generated, and the split
    counter feeds the Figure 3/13/18 mechanisms. Engines with a fixed
    per-record footprint (off-row, SIRO) never split. *)

type t

val create :
  page_bytes:int -> slot_bytes:int -> records:int -> fill_factor:float -> wal:Wal.t -> t
(** [slot_bytes] is the on-page footprint of one record (for SIRO
    layouts: record + placeholder). [fill_factor] in (0, 1]. *)

val page_count : t -> int
val record_count : t -> int
val page_of : t -> rid:int -> Page.t
val splits : t -> int
val total_bytes : t -> int
(** Sum of page [used_bytes]. *)

val version_bytes : t -> int
(** In-row old-version bytes currently stored. *)

val add_version_bytes : t -> rid:int -> bytes:int -> [ `Fits | `Split ]
(** Store [bytes] of old-version data next to [rid]. If the page
    overflows, split it (records and their version bytes redistribute,
    redo is appended to the WAL) and report [`Split]. A single-record
    page cannot split and simply grows ([`Fits]). *)

val remove_version_bytes : t -> rid:int -> bytes:int -> unit
(** Vacuum: reclaim old-version bytes held for [rid]. *)

val rid_version_bytes : t -> rid:int -> int
