lib/storage/page.mli: Resource
