lib/storage/wal.ml:
