lib/storage/lru.mli:
