lib/storage/page.ml: Printf Resource
