lib/storage/buffer_pool.ml: Lru
