lib/storage/wal.mli:
