lib/storage/heap.mli: Page Wal
