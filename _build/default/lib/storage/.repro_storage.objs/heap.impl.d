lib/storage/heap.ml: Array Hashtbl Option Page Vec Wal
