type t = { boundaries : Timestamp.t array; now_ts : Timestamp.t }

let make ~live ~now_ts =
  let boundaries = Array.of_list live in
  Array.sort compare boundaries;
  let n = Array.length boundaries in
  for i = 0 to n - 2 do
    if boundaries.(i) = boundaries.(i + 1) then
      invalid_arg "Zone_set.make: duplicate begin timestamp"
  done;
  if n > 0 && boundaries.(n - 1) >= now_ts then
    invalid_arg "Zone_set.make: live begin timestamp not before now_ts";
  { boundaries; now_ts }

let of_txn_manager mgr =
  make ~live:(Txn_manager.live_begin_ts mgr) ~now_ts:(Txn_manager.oracle mgr)

let now_ts t = t.now_ts
let boundary_count t = Array.length t.boundaries

let oldest_boundary t =
  if Array.length t.boundaries = 0 then t.now_ts else t.boundaries.(0)

let zones t =
  let n = Array.length t.boundaries in
  if n = 0 then [ (min_int, t.now_ts) ]
  else begin
    let acc = ref [ (t.boundaries.(n - 1), t.now_ts) ] in
    for i = n - 1 downto 1 do
      acc := (t.boundaries.(i - 1), t.boundaries.(i)) :: !acc
    done;
    (min_int, t.boundaries.(0)) :: !acc
  end

(* Smallest boundary >= x, as an index; [n] if none. *)
let lower_bound t x =
  let a = t.boundaries in
  let rec search lo hi = if lo >= hi then lo else
    let mid = (lo + hi) / 2 in
    if a.(mid) < x then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length a)

(* (vs, ve) sits strictly inside a zone iff no live boundary lies in
   [vs, ve] and ve precedes the snapshot's current time. *)
let prunable t ~vs ~ve =
  if vs >= ve then invalid_arg "Zone_set.prunable: requires vs < ve";
  if ve >= t.now_ts then false
  else
    let i = lower_bound t vs in
    i >= Array.length t.boundaries || t.boundaries.(i) > ve

let covers t ~lo ~hi =
  if lo > hi then invalid_arg "Zone_set.covers: requires lo <= hi";
  if hi >= t.now_ts then false
  else
    let i = lower_bound t lo in
    i >= Array.length t.boundaries || t.boundaries.(i) > hi

let pp fmt t =
  let pp_bound fmt b = if b = min_int then Format.pp_print_string fmt "-inf" else Format.pp_print_int fmt b in
  Format.fprintf fmt "@[<h>{";
  List.iteri
    (fun i (lo, hi) ->
      if i > 0 then Format.pp_print_string fmt ", ";
      Format.fprintf fmt "[%a,%a]" pp_bound lo pp_bound hi)
    (zones t);
  Format.fprintf fmt "}@]"
