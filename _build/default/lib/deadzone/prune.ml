let dead_spec ~live ~vs ~ve =
  if vs >= ve then invalid_arg "Prune.dead_spec: requires vs < ve";
  not (List.exists (fun tb -> vs < tb && tb < ve) live)

let snapshot_read_of_view view ~vs ~ve = Read_view.snapshot_read view ~vs ~ve

let prunable_by_views ~views ~vs ~ve =
  not (List.exists (fun view -> snapshot_read_of_view view ~vs ~ve) views)

let commit_interval log ~vs ~ve =
  if ve = Timestamp.infinity then None
  else
    let commit_of tid = if tid = 0 then Some 0 else Commit_log.commit_ts_of log tid in
    match (commit_of vs, commit_of ve) with
    | Some cs, Some ce -> Some (cs, ce)
    | None, _ | _, None -> None

let prunable_fast zones ~commit_log ~vs ~ve =
  match commit_interval commit_log ~vs ~ve with
  | Some (cs, ce) -> Zone_set.prunable zones ~vs:cs ~ve:ce
  | None -> false
