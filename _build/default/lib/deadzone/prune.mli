(** Version pruning — executable forms of §3.1.

    Two worlds coexist, as in the paper:

    - the {e oracle} world, where versions carry commit-time visibility
      intervals and deadness is Definition 3.3 checked directly;
    - the {e read-view} world (what MySQL/PostgreSQL actually store),
      where a version's [vs]/[ve] are the *begin* timestamps of the
      creator and successor transactions, and snapshot-read-ness is
      decided through read views.

    The property-based tests assert that [Zone_set.prunable] agrees with
    [dead_spec] on randomized histories — Theorem 3.5 checked on
    samples — and that the read-view form is conservative w.r.t. the
    oracle form. *)

val dead_spec : live:Timestamp.t list -> vs:Timestamp.t -> ve:Timestamp.t -> bool
(** Definition 3.3 verbatim: no live transaction began strictly inside
    [(vs, ve)] (or no transaction is live at all). [vs]/[ve] are
    commit-time visibility bounds. Requires [vs < ve]. *)

val snapshot_read_of_view : Read_view.t -> vs:Timestamp.t -> ve:Timestamp.t -> bool
(** Read-view world: is the version the snapshot read of its record for
    this view? ([Read_view.snapshot_read], re-exported here so the
    pruning rule reads like the paper's rewritten theorem.) *)

val prunable_by_views : views:Read_view.t list -> vs:Timestamp.t -> ve:Timestamp.t -> bool
(** The rewritten Theorem 3.5 (§3.1, last paragraph): a version can be
    pruned iff it is a snapshot read to none of the live views. An empty
    view list means no live transactions: everything is prunable. *)

(** Why the translation below exists: checking only live read views
    against a {e stale} view snapshot can prune a version needed by a
    transaction that began after the snapshot; and checking begin-ts
    intervals against zones alone can prune a version whose successor
    began before — but committed after — a live reader. Theorem 3.5 is
    stated over {e commit-time} visibility; {!commit_interval} performs
    that translation through the commit log (the §4.2 pg_xact role). *)

val commit_interval :
  Commit_log.t -> vs:Timestamp.t -> ve:Timestamp.t -> (Timestamp.t * Timestamp.t) option
(** Translate a version's begin-timestamp bounds into its true
    visibility interval: the commit timestamps of its creator and of its
    successor's creator ([Some] only when both are committed — always
    the case for a version displaced by SIRO relocation, since a third
    update cannot start before the second committed). A transaction
    [T_k] sees the version iff [cs < t_b^k < ce], which is exactly the
    oracle world of Theorem 3.5. The pseudo-transaction 0 (initial load)
    is treated as committed at 0. *)

val prunable_fast :
  Zone_set.t -> commit_log:Commit_log.t -> vs:Timestamp.t -> ve:Timestamp.t -> bool
(** What vDriver executes per relocated version: translate [(vs, ve)]
    to its commit interval and apply the zone containment test. Sound
    against stale zone snapshots (staleness only adds boundaries and
    ages [C^T]); exact for the snapshot's live set. Returns [false]
    whenever the translation is unavailable. *)
