lib/deadzone/zone_set.ml: Array Format List Timestamp Txn_manager
