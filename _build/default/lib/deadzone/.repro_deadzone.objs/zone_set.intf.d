lib/deadzone/zone_set.mli: Format Timestamp Txn_manager
