lib/deadzone/prune.mli: Commit_log Read_view Timestamp Zone_set
