lib/deadzone/prune.ml: Commit_log List Read_view Timestamp Zone_set
