(** Complete dead zones (Definition 3.4).

    Given the begin timestamps of the live transactions
    [t_b^1 < ... < t_b^m] and the current time [C^T], the complete set of
    dead zones is
    [{[-inf, t_b^1], [t_b^1, t_b^2], ..., [t_b^m, C^T]}]
    (just [{[-inf, C^T]}] when no transaction is live). A version whose
    visibility interval falls strictly inside any zone is dead
    (Theorem 3.5) — including *wide* zones between an old LLT and the
    oldest short transaction, which is what lets vDriver reclaim versions
    the classic oldest-active criterion cannot.

    A zone set is an immutable snapshot; vDriver refreshes it
    periodically rather than on every begin/commit (§3.3). Staleness is
    conservative: a stale snapshot lists extra (already finished)
    boundaries and an old [C^T], both of which only *reduce*
    prunability. *)

type t

val make : live:Timestamp.t list -> now_ts:Timestamp.t -> t
(** [live] is the begin timestamps of live transactions, in any order
    but with no duplicates; all must be [< now_ts].
    Raises [Invalid_argument] otherwise. *)

val of_txn_manager : Txn_manager.t -> t
(** Snapshot the live table right now. *)

val now_ts : t -> Timestamp.t
val boundary_count : t -> int
(** Number of live begin timestamps recorded. *)

val oldest_boundary : t -> Timestamp.t
(** The oldest live begin timestamp, or [now_ts] when no transaction is
    live — the classic GC horizon this snapshot implies. *)

val zones : t -> (Timestamp.t * Timestamp.t) list
(** Materialized zones in ascending order, using [min_int] for [-inf].
    Always non-empty; adjacent zones share their boundary. *)

val prunable : t -> vs:Timestamp.t -> ve:Timestamp.t -> bool
(** Theorem 3.5: does some zone contain [(vs, ve)] strictly
    ([z_s < vs] and [ve < z_e])? Requires [vs < ve]. *)

val covers : t -> lo:Timestamp.t -> hi:Timestamp.t -> bool
(** Segment-granularity form used by vCutter: is the whole range
    [\[lo, hi\]] (the segment's [v_min, v_max]) strictly inside one
    zone? Identical check to {!prunable}; named separately because the
    operands are segment descriptors, not a single version. *)

val pp : Format.formatter -> t -> unit
