type pattern = Uniform | Zipfian of float

let pattern_to_string = function
  | Uniform -> "uniform"
  | Zipfian s -> Printf.sprintf "zipf(%.2f)" s

type row_sampler = Uniform_rows | Zipf_rows of Zipf.t

type t = { schema : Schema.t; rows : row_sampler }

let create schema pattern =
  let rows =
    match pattern with
    | Uniform -> Uniform_rows
    | Zipfian s -> Zipf_rows (Zipf.create ~n:schema.Schema.rows_per_table ~s)
  in
  { schema; rows }

let sample t rng =
  let table = Rng.int rng t.schema.Schema.tables in
  let row =
    match t.rows with
    | Uniform_rows -> Rng.int rng t.schema.Schema.rows_per_table
    | Zipf_rows z -> Zipf.sample z rng
  in
  Schema.rid t.schema ~table ~row
