type result = {
  engine_name : string;
  throughput : (float * float) list;
  version_space : (float * float) list;
  redo : (float * float) list;
  max_chain : (float * float) list;
  splits : (float * float) list;
  chain_cdf : (int * float) list;
  latency_us : Histogram.t;  (* committed-transaction latency, 10 us buckets *)
  commits : int;
  conflicts : int;
  llt_reads : int;
  truncations : int;
  latch_wait : Clock.time;
  cut_delays : (Vclass.t * Clock.time) list;
  driver : Driver.t option;
}

let run ~engine (cfg : Exp_config.t) =
  let eng = engine cfg.Exp_config.schema in
  let sched = Scheduler.create () in
  let master_rng = Rng.create cfg.Exp_config.seed in
  let horizon = Clock.seconds cfg.Exp_config.duration_s in
  let commit_rate = Series.Rate.create ~bucket:1.0 "commits" in
  let latency_us = Histogram.create ~bucket_width:10 () in
  let conflicts = ref 0 in
  let llt_reads = ref 0 in
  (* Pre-build one sampler per phase so workers just look the pattern
     up by time. *)
  let samplers =
    List.map
      (fun { Exp_config.at_s; pattern } ->
        (at_s, Access.create cfg.Exp_config.schema pattern))
      (if cfg.Exp_config.phases = [] then [ { Exp_config.at_s = 0.; pattern = Access.Uniform } ]
       else cfg.Exp_config.phases)
  in
  let sampler_at s =
    let rec pick current = function
      | [] -> current
      | (at_s, sampler) :: rest -> if s >= at_s then pick sampler rest else current
    in
    match samplers with
    | [] -> assert false
    | (_, first) :: rest -> pick first rest
  in
  (* OLTP workers: each short transaction takes two scheduling steps —
     begin first, then the operation body — so that transactions from
     different workers genuinely overlap in simulated time (write-write
     conflicts depend on that overlap). *)
  let spawn_worker i =
    let rng = Rng.split master_rng in
    let pending = ref None in
    Scheduler.spawn sched ~name:(Printf.sprintf "worker-%d" i) ~at:0 (fun now ->
        match !pending with
        | None ->
            if now >= horizon then Scheduler.Finished
            else begin
              let txn, t = eng.Engine.begin_txn ~now in
              pending := Some txn;
              Scheduler.Sleep_until t
            end
        | Some txn ->
            pending := None;
            let access = sampler_at (Clock.to_seconds now) in
            let t = ref now in
            (try
               for _ = 1 to cfg.Exp_config.reads_per_txn do
                 let rid = Access.sample access rng in
                 let _, t' = eng.Engine.read txn ~rid ~now:!t in
                 t := t'
               done;
               for _ = 1 to cfg.Exp_config.writes_per_txn do
                 let rid = Access.sample access rng in
                 match eng.Engine.write txn ~rid ~payload:(Rng.int rng 1_000_000) ~now:!t with
                 | Engine.Committed_path t' -> t := t'
                 | Engine.Conflict t' ->
                     t := t';
                     raise Exit
               done;
               t := eng.Engine.commit txn ~now:!t;
               Series.Rate.incr commit_rate ~time:(Clock.to_seconds !t);
               Histogram.add latency_us ((!t - txn.Txn.begin_time) / 1_000)
             with Exit ->
               incr conflicts;
               t := eng.Engine.abort txn ~now:!t);
            Scheduler.Sleep_until !t)
  in
  for i = 0 to cfg.Exp_config.workers - 1 do
    spawn_worker i
  done;
  (* LLT drivers: begin at [start_s], read random records continuously,
     commit at the end of their lifetime. *)
  List.iteri
    (fun gi { Exp_config.start_s; duration_s; count } ->
      for li = 0 to count - 1 do
        let rng = Rng.split master_rng in
        let uniform = Access.create cfg.Exp_config.schema Access.Uniform in
        let state = ref None in
        let llt_end = Clock.seconds (start_s +. duration_s) in
        Scheduler.spawn sched
          ~name:(Printf.sprintf "llt-%d-%d" gi li)
          ~at:(Clock.seconds start_s)
          (fun now ->
            match !state with
            | None ->
                let txn, t = eng.Engine.begin_txn ~now in
                state := Some txn;
                Scheduler.Sleep_until t
            | Some txn ->
                if now >= llt_end || now >= horizon then begin
                  let _ = eng.Engine.commit txn ~now in
                  Scheduler.Finished
                end
                else begin
                  let rid = Access.sample uniform rng in
                  let _, t = eng.Engine.read txn ~rid ~now in
                  incr llt_reads;
                  Scheduler.Sleep_until t
                end)
      done)
    cfg.Exp_config.llts;
  (* Background GC (vacuum / purge / vCutter). *)
  Scheduler.spawn sched ~name:"gc" ~at:cfg.Exp_config.gc_period (fun now ->
      if now >= horizon then Scheduler.Finished
      else begin
        let t = eng.Engine.maintenance ~now in
        Scheduler.Sleep_until (max t (now + cfg.Exp_config.gc_period))
      end);
  (* Metrics sampler. *)
  let space_series = Series.create "space" in
  let redo_series = Series.create "redo" in
  let chain_series = Series.create "chain" in
  let split_series = Series.create "splits" in
  let sample_period = Clock.seconds cfg.Exp_config.sample_period_s in
  let last_sample = ref { Engine.version_bytes = 0; redo_bytes = 0; max_chain = 0; splits = 0; truncations = 0; latch_wait = 0 } in
  Scheduler.spawn sched ~name:"sampler" ~at:sample_period (fun now ->
      let s = eng.Engine.sample () in
      last_sample := s;
      let sec = Clock.to_seconds now in
      Series.add space_series ~time:sec ~value:(float_of_int s.Engine.version_bytes);
      Series.add redo_series ~time:sec ~value:(float_of_int s.Engine.redo_bytes);
      Series.add chain_series ~time:sec ~value:(float_of_int s.Engine.max_chain);
      Series.add split_series ~time:sec ~value:(float_of_int s.Engine.splits);
      if now >= horizon then Scheduler.Finished else Scheduler.Sleep_until (now + sample_period));
  ignore (Scheduler.run sched ~until:horizon);
  eng.Engine.finish ~now:horizon;
  let final = eng.Engine.sample () in
  let cdf = Histogram.cdf (eng.Engine.chain_histogram ()) in
  {
    engine_name = eng.Engine.name;
    throughput = Series.Rate.per_second commit_rate;
    version_space = Series.to_list space_series;
    redo = Series.to_list redo_series;
    max_chain = Series.to_list chain_series;
    splits = Series.to_list split_series;
    chain_cdf = cdf;
    latency_us;
    commits = Series.Rate.total commit_rate;
    conflicts = !conflicts;
    llt_reads = !llt_reads;
    truncations = final.Engine.truncations;
    latch_wait = final.Engine.latch_wait;
    cut_delays =
      (match eng.Engine.driver with
      | Some d -> Version_store.cut_delays (Driver.store d)
      | None -> []);
    driver = eng.Engine.driver;
  }

let avg_throughput r ~between:(lo, hi) =
  let xs =
    List.filter_map (fun (t, v) -> if t >= lo && t <= hi then Some v else None) r.throughput
  in
  Stats.mean xs

let final_space r = match List.rev r.version_space with (_, v) :: _ -> int_of_float v | [] -> 0

let peak_space r =
  List.fold_left (fun acc (_, v) -> max acc (int_of_float v)) 0 r.version_space

let peak_chain r = List.fold_left (fun acc (_, v) -> max acc (int_of_float v)) 0 r.max_chain
