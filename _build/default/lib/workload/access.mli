(** Record-access patterns, mirroring sysbench: the table is picked
    uniformly, the row within it by the configured distribution
    ([rand-zipfian-exp] in the paper's runs). *)

type pattern = Uniform | Zipfian of float

val pattern_to_string : pattern -> string

type t

val create : Schema.t -> pattern -> t
val sample : t -> Rng.t -> int
(** Draw a record id. *)
