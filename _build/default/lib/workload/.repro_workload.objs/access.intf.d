lib/workload/access.mli: Rng Schema
