lib/workload/runner.ml: Access Clock Driver Engine Exp_config Histogram List Printf Rng Scheduler Series Stats Txn Vclass Version_store
