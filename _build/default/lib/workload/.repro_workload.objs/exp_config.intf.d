lib/workload/exp_config.mli: Access Clock Schema
