lib/workload/runner.mli: Clock Driver Engine Exp_config Histogram Schema Vclass
