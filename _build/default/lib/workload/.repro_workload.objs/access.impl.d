lib/workload/access.ml: Printf Rng Schema Zipf
