lib/workload/exp_config.ml: Access Clock Schema
