type t = {
  name : string;
  mutable free_at : Clock.time;
  mutable busy_time : Clock.time;
  mutable wait_time : Clock.time;
  mutable acquisitions : int;
}

let create name = { name; free_at = 0; busy_time = 0; wait_time = 0; acquisitions = 0 }
let name t = t.name

let acquire t ~now ~hold =
  if hold < 0 then invalid_arg "Resource.acquire: negative hold";
  let grant = max now t.free_at in
  t.wait_time <- t.wait_time + (grant - now);
  t.busy_time <- t.busy_time + hold;
  t.free_at <- grant + hold;
  t.acquisitions <- t.acquisitions + 1;
  t.free_at

let free_at t = t.free_at
let busy_time t = t.busy_time
let wait_time t = t.wait_time
let acquisitions t = t.acquisitions
