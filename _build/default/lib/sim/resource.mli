(** A contended exclusive resource with FIFO service — the simulation
    stand-in for a page latch or a global mutex.

    A caller arriving at simulated time [now] that wants to hold the
    resource for [hold] nanoseconds is granted it at
    [max now free_at]; the resource then stays busy until the grant time
    plus [hold]. Cumulative wait and busy times are tracked so latch
    contention (the MySQL collapse mechanism in the paper, §2.1) is both
    reproduced and measurable. *)

type t

val create : string -> t
val name : t -> string

val acquire : t -> now:Clock.time -> hold:Clock.time -> Clock.time
(** [acquire r ~now ~hold] returns the simulated time at which the caller
    has finished its critical section ([grant + hold]). *)

val free_at : t -> Clock.time
(** Time at which the resource next becomes free. *)

val busy_time : t -> Clock.time
(** Total simulated time the resource has been held. *)

val wait_time : t -> Clock.time
(** Total simulated time callers spent queueing. *)

val acquisitions : t -> int
