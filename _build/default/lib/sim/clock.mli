(** Simulated time.

    Time is an integer count of nanoseconds since simulation start. The
    paper's experiments run for hundreds of seconds on a 96-core machine;
    nanosecond integer time keeps every run deterministic and leaves
    63 bits of headroom (about 292 years). *)

type time = int

val ns : int -> time
val us : int -> time
val ms : int -> time
val seconds : float -> time
val to_seconds : time -> float
val pp : Format.formatter -> time -> unit
