type t = {
  name : string;
  window : Clock.time;
  mutable window_start : Clock.time;
  mutable window_busy : Clock.time;
  mutable rho : float;
  mutable total_busy : Clock.time;
}

let create ?(window = Clock.ms 100) name =
  if window <= 0 then invalid_arg "Queue_model.create: window must be positive";
  { name; window; window_start = 0; window_busy = 0; rho = 0.; total_busy = 0 }

let name t = t.name

let refresh t ~now =
  if now - t.window_start >= t.window then begin
    let span = max 1 (now - t.window_start) in
    t.rho <- min 0.95 (float_of_int t.window_busy /. float_of_int span);
    t.window_start <- now;
    t.window_busy <- 0
  end

let service t ~now ~hold =
  if hold < 0 then invalid_arg "Queue_model.service: negative hold";
  refresh t ~now;
  t.window_busy <- t.window_busy + hold;
  t.total_busy <- t.total_busy + hold;
  let delay = t.rho /. (1. -. t.rho) *. float_of_int hold /. 2. in
  now + hold + int_of_float delay

let utilization t = t.rho
let busy_time t = t.total_busy
