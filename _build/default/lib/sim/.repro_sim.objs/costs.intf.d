lib/sim/costs.mli: Clock
