lib/sim/resource.ml: Clock
