lib/sim/scheduler.mli: Clock
