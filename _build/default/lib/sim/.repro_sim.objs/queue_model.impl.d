lib/sim/queue_model.ml: Clock
