lib/sim/costs.ml: Clock
