lib/sim/queue_model.mli: Clock
