lib/sim/scheduler.ml: Array Clock
