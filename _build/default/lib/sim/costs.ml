type t = {
  txn_begin : Clock.time;
  txn_commit : Clock.time;
  read_base : Clock.time;
  write_base : Clock.time;
  version_hop : Clock.time;
  io_latency : Clock.time;
  page_split : Clock.time;
  split_redo_bytes : int;
  undo_header : Clock.time;
  llb_lookup : Clock.time;
  segment_append : Clock.time;
  zone_check : Clock.time;
  gc_page_scan : Clock.time;
  think : Clock.time;
}

(* [txn_begin]/[txn_commit]/[think] fold in client round-trip and
   statement overhead; they set the baseline transaction length (and so
   the event density the simulator must process) without affecting
   which cost terms grow with chain length. *)
let default =
  {
    txn_begin = Clock.us 10;
    txn_commit = Clock.us 10;
    read_base = Clock.us 2;
    write_base = Clock.us 3;
    version_hop = Clock.ns 150;
    io_latency = Clock.us 12;
    page_split = Clock.us 60;
    split_redo_bytes = 8_192;
    undo_header = Clock.us 2;
    llb_lookup = Clock.ns 700;
    segment_append = Clock.ns 400;
    zone_check = Clock.ns 60;
    gc_page_scan = Clock.us 2;
    think = Clock.us 20;
  }
