(** Cost model for the simulated hardware and engine internals.

    Each field is the simulated duration of one primitive. Defaults are
    loosely calibrated to a 2020-era NUMA server with NVMe SSDs (the
    paper's testbed): sub-microsecond in-memory work, ~10 us block I/O,
    tens of microseconds for a page split. Absolute values only scale the
    y-axis of the reproduced figures; the *shapes* come from which terms
    grow with version-chain length, which is taken from the paper's code
    analysis (§2.1). *)

type t = {
  txn_begin : Clock.time;  (** allocate tid, build read view *)
  txn_commit : Clock.time;  (** commit-log write, view teardown *)
  read_base : Clock.time;  (** locate record page, copy visible tuple *)
  write_base : Clock.time;  (** in-place update / heap insert *)
  version_hop : Clock.time;  (** examine one version while walking a chain *)
  io_latency : Clock.time;  (** fetch one block the buffer pool missed *)
  page_split : Clock.time;  (** split an overflowing heap page (in-row) *)
  split_redo_bytes : int;  (** redo generated per page split *)
  undo_header : Clock.time;  (** rollback-segment header bookkeeping (MySQL) *)
  llb_lookup : Clock.time;  (** vDriver LLB hash probe + segment index *)
  segment_append : Clock.time;  (** vSorter relocation into a version segment *)
  zone_check : Clock.time;  (** one Theorem 3.5 containment test *)
  gc_page_scan : Clock.time;  (** vacuum/purge work per page scanned *)
  think : Clock.time;  (** per-operation client/parse overhead *)
}

val default : t
