(** Analytic contention model for short-hold global latches.

    The FIFO {!Resource} is exact for latches whose holders are spread
    across many instances (page latches), but a single global latch
    touched by every transaction amplifies the simulator's step
    granularity into false serialization. For those (MySQL's
    rollback-segment mutex), we instead measure utilization over a
    sliding window and charge each acquisition its hold time plus the
    M/M/1-style expected queueing delay [rho / (1 - rho) * hold / 2]. *)

type t

val create : ?window:Clock.time -> string -> t
(** [window] defaults to 100 ms of simulated time. *)

val name : t -> string

val service : t -> now:Clock.time -> hold:Clock.time -> Clock.time
(** Returns the completion time [now + hold + expected delay]. *)

val utilization : t -> float
(** Current windowed utilization estimate, in [0, 0.95]. *)

val busy_time : t -> Clock.time
(** Total hold time accumulated over the run. *)
