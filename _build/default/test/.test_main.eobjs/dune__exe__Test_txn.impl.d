test/test_txn.ml: Alcotest Clock Commit_log List QCheck QCheck_alcotest Read_view Timestamp Txn Txn_manager
