test/test_core.ml: Alcotest Array Atomic Classifier Clock Collab Domain Driver Prune_stats Read_view Siro State Timestamp Txn Txn_manager Vclass Vcutter Version Version_store Vsorter
