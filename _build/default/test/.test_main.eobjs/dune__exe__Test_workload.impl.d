test/test_workload.ml: Access Alcotest Clock Exp_config Inrow_engine List Offrow_engine Rng Runner Schema Siro_engine
