test/test_more.ml: Access Alcotest Clock Costs Engine Exp_config Heap Histogram List Offrow_engine Read_view Rng Runner Schema Siro Siro_engine Table Version Wal
