test/test_model.ml: Array Cc Classifier Clock Driver List Printf QCheck QCheck_alcotest Read_view Siro State Timestamp Txn Txn_manager Version
