test/test_main.ml: Alcotest List Test_core Test_core2 Test_deadzone Test_engines Test_model Test_more Test_sim Test_storage Test_txn Test_util Test_version Test_workload
