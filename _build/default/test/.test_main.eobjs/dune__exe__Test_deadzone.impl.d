test/test_deadzone.ml: Alcotest Gen List Prune QCheck QCheck_alcotest Txn Txn_manager Zone_set
