test/test_sim.ml: Alcotest Clock List Queue_model Resource Scheduler
