test/test_storage.ml: Alcotest Buffer_pool Gen Heap List Lru Page QCheck QCheck_alcotest Wal
