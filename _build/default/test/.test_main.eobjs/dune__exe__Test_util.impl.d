test/test_util.ml: Alcotest Array Fun Gen Histogram List QCheck QCheck_alcotest Rng Series Stats Vec Zipf
