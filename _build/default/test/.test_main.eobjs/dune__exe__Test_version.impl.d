test/test_version.ml: Alcotest Array Chain Classifier Clock Gen List Printf QCheck QCheck_alcotest Read_view Segment Vclass Version
