test/test_engines.ml: Alcotest Cc Classifier Clock Engine Histogram Inrow_engine List Mvcc_search Offrow_engine QCheck QCheck_alcotest Read_view Schema Siro_engine State Txn Txn_manager
