(* Tests for repro_txn: read views, commit log, transaction manager. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Read_view *)

let view ~creator ~actives ~high = Read_view.make ~creator ~actives ~high

let test_view_committed_before () =
  (* View of T10: actives {4, 7} at its begin; high = 10. *)
  let v = view ~creator:10 ~actives:[ 7; 4 ] ~high:10 in
  check_bool "old committed" true (Read_view.committed_before v 2);
  check_bool "active not committed" false (Read_view.committed_before v 4);
  check_bool "active not committed" false (Read_view.committed_before v 7);
  check_bool "future not committed" false (Read_view.committed_before v 11);
  check_bool "own writes visible" true (Read_view.committed_before v 10);
  check_bool "infinity never committed" false (Read_view.committed_before v Timestamp.infinity)

let test_view_snapshot_read () =
  let v = view ~creator:10 ~actives:[ 7 ] ~high:10 in
  (* Version (2, 5): both creators committed before T10 -> superseded. *)
  check_bool "superseded" false (Read_view.snapshot_read v ~vs:2 ~ve:5);
  (* Version (5, 7): successor's creator was active -> snapshot read. *)
  check_bool "successor uncommitted" true (Read_view.snapshot_read v ~vs:5 ~ve:7);
  (* Version (5, 12): successor began after the view -> snapshot read. *)
  check_bool "successor future" true (Read_view.snapshot_read v ~vs:5 ~ve:12);
  (* Version (7, 12): creator was active -> not visible. *)
  check_bool "creator active" false (Read_view.snapshot_read v ~vs:7 ~ve:12);
  (* Current record by an old committed creator. *)
  check_bool "current record" true (Read_view.snapshot_read v ~vs:5 ~ve:Timestamp.infinity)

let test_view_own_update () =
  (* Definition 3.1's "except what T_k updates": T10's own version is
     its snapshot read, and the version it superseded is not. *)
  let v = view ~creator:10 ~actives:[] ~high:10 in
  check_bool "own version read" true (Read_view.snapshot_read v ~vs:10 ~ve:Timestamp.infinity);
  check_bool "superseded by own write" false (Read_view.snapshot_read v ~vs:5 ~ve:10)

let test_view_invalid () =
  Alcotest.check_raises "active >= high" (Invalid_argument "Read_view.make: active ts >= high")
    (fun () -> ignore (view ~creator:10 ~actives:[ 11 ] ~high:10));
  Alcotest.check_raises "creator active"
    (Invalid_argument "Read_view.make: creator listed active") (fun () ->
      ignore (view ~creator:5 ~actives:[ 5 ] ~high:10))

let test_view_horizon () =
  let v = view ~creator:10 ~actives:[ 3; 8 ] ~high:10 in
  check_int "horizon is min active" 3 (Read_view.oldest_visible_horizon v);
  let v' = view ~creator:10 ~actives:[] ~high:10 in
  check_int "horizon is creator when alone" 10 (Read_view.oldest_visible_horizon v')

(* -------------------------------------------------------------------- *)
(* Commit_log *)

let test_commit_log () =
  let log = Commit_log.create () in
  Commit_log.record log ~tid:3 (Commit_log.Committed_at 9);
  Commit_log.record log ~tid:5 (Commit_log.Aborted_at 11);
  check_bool "committed" true (Commit_log.is_committed log 3);
  check_bool "aborted not committed" false (Commit_log.is_committed log 5);
  check_bool "unknown not committed" false (Commit_log.is_committed log 42);
  check_int "finished" 2 (Commit_log.finished log);
  Alcotest.check_raises "duplicate" (Invalid_argument "Commit_log.record: duplicate status")
    (fun () -> Commit_log.record log ~tid:3 (Commit_log.Committed_at 12))

(* -------------------------------------------------------------------- *)
(* Txn_manager *)

let test_mgr_begin_commit () =
  let mgr = Txn_manager.create () in
  let t1 = Txn_manager.begin_txn mgr ~now:0 in
  let t2 = Txn_manager.begin_txn mgr ~now:10 in
  check_bool "distinct tids" true (t1.Txn.tid <> t2.Txn.tid);
  check_int "two live" 2 (Txn_manager.live_count mgr);
  check_bool "sorted live ts" true (Txn_manager.live_begin_ts mgr = [ t1.Txn.tid; t2.Txn.tid ]);
  Txn_manager.commit mgr t1 ~now:20;
  check_int "one live" 1 (Txn_manager.live_count mgr);
  check_bool "committed state" true (t1.Txn.state = Txn.Committed);
  check_bool "commit ts assigned" true (t1.Txn.commit_ts <> None);
  check_bool "logged" true (Commit_log.is_committed (Txn_manager.commit_log mgr) t1.Txn.tid)

let test_mgr_view_sees_earlier_commit () =
  let mgr = Txn_manager.create () in
  let t1 = Txn_manager.begin_txn mgr ~now:0 in
  Txn_manager.commit mgr t1 ~now:1;
  let t2 = Txn_manager.begin_txn mgr ~now:2 in
  check_bool "t2 sees t1" true (Read_view.committed_before t2.Txn.view t1.Txn.tid);
  let t3 = Txn_manager.begin_txn mgr ~now:3 in
  check_bool "t3 does not see live t2" false (Read_view.committed_before t3.Txn.view t2.Txn.tid)

let test_mgr_abort () =
  let mgr = Txn_manager.create () in
  let t = Txn_manager.begin_txn mgr ~now:0 in
  Txn_manager.abort mgr t ~now:5;
  check_bool "aborted" true (t.Txn.state = Txn.Aborted);
  check_int "none live" 0 (Txn_manager.live_count mgr);
  check_int "counted" 1 (Txn_manager.aborted mgr);
  Alcotest.check_raises "double finish"
    (Invalid_argument "Txn_manager: transaction not active") (fun () ->
      Txn_manager.commit mgr t ~now:6)

let test_mgr_oldest_horizon () =
  let mgr = Txn_manager.create () in
  check_bool "no live" true (Txn_manager.oldest_active mgr = None);
  check_int "horizon = oracle when empty" (Txn_manager.oracle mgr)
    (Txn_manager.oldest_visible_horizon mgr);
  let t1 = Txn_manager.begin_txn mgr ~now:0 in
  let _t2 = Txn_manager.begin_txn mgr ~now:1 in
  check_bool "oldest is t1" true (Txn_manager.oldest_active mgr = Some t1.Txn.tid);
  check_int "horizon at t1" t1.Txn.tid (Txn_manager.oldest_visible_horizon mgr)

let test_mgr_llt_views () =
  let mgr = Txn_manager.create () in
  let old_txn = Txn_manager.begin_txn mgr ~now:0 in
  let _young = Txn_manager.begin_txn mgr ~now:(Clock.ms 900) in
  let llts = Txn_manager.llt_views mgr ~now:(Clock.ms 1000) ~delta_llt:(Clock.ms 500) in
  check_int "only the old txn is an LLT" 1 (List.length llts);
  check_bool "it is old_txn's view" true
    ((List.hd llts).Read_view.creator = old_txn.Txn.tid)

let test_mgr_avg_duration () =
  let mgr = Txn_manager.create () in
  check_int "zero before commits" 0 (Txn_manager.avg_txn_duration mgr);
  let t = Txn_manager.begin_txn mgr ~now:0 in
  Txn_manager.commit mgr t ~now:(Clock.us 100);
  check_int "first commit sets avg" (Clock.us 100) (Txn_manager.avg_txn_duration mgr);
  let t2 = Txn_manager.begin_txn mgr ~now:0 in
  Txn_manager.commit mgr t2 ~now:(Clock.us 200);
  let avg = Txn_manager.avg_txn_duration mgr in
  check_bool "EWMA between samples" true (avg > Clock.us 100 && avg < Clock.us 200)

(* -------------------------------------------------------------------- *)
(* Properties *)

(* Generate a history: n transactions begin in order; a random subset is
   still live. *)
let history_gen =
  QCheck.Gen.(
    let* n = 2 -- 40 in
    let* live_mask = list_repeat n bool in
    return (n, live_mask))

let qcheck_view_consistency =
  QCheck.Test.make ~name:"manager views agree with live table" ~count:200
    (QCheck.make history_gen) (fun (n, live_mask) ->
      let mgr = Txn_manager.create () in
      let txns = List.init n (fun i -> Txn_manager.begin_txn mgr ~now:i) in
      List.iteri
        (fun i txn -> if not (List.nth live_mask i) then Txn_manager.commit mgr txn ~now:(n + i))
        txns;
      let live = Txn_manager.live_begin_ts mgr in
      let expected =
        List.filteri (fun i _ -> List.nth live_mask i) txns
        |> List.map (fun (t : Txn.t) -> t.Txn.tid)
      in
      live = expected)

let qcheck_snapshot_read_unique =
  (* For any view and any record's version list (contiguous intervals),
     exactly one version is the snapshot read if the creator of the
     oldest version is visible. *)
  QCheck.Test.make ~name:"at most one snapshot read per record" ~count:300
    QCheck.(pair (int_bound 30) (int_bound 30))
    (fun (k, m) ->
      let mgr = Txn_manager.create () in
      (* Create m committed writer txns to build a version history. *)
      let writers = List.init (max 1 m) (fun i -> Txn_manager.begin_txn mgr ~now:i) in
      List.iteri (fun i w -> Txn_manager.commit mgr w ~now:(100 + i)) writers;
      let reader = Txn_manager.begin_txn mgr ~now:200 in
      ignore k;
      let ts = List.map (fun (w : Txn.t) -> w.Txn.tid) writers in
      let bounds = ts @ [ Timestamp.infinity ] in
      let rec intervals = function
        | a :: (b :: _ as rest) -> (a, b) :: intervals rest
        | [ _ ] | [] -> []
      in
      let vs_ve = intervals bounds in
      let hits =
        List.filter (fun (vs, ve) -> Read_view.snapshot_read reader.Txn.view ~vs ~ve) vs_ve
      in
      List.length hits = 1)

let suites =
  [
    ( "txn.read_view",
      [
        Alcotest.test_case "committed_before" `Quick test_view_committed_before;
        Alcotest.test_case "snapshot_read" `Quick test_view_snapshot_read;
        Alcotest.test_case "own update" `Quick test_view_own_update;
        Alcotest.test_case "invalid construction" `Quick test_view_invalid;
        Alcotest.test_case "visibility horizon" `Quick test_view_horizon;
      ] );
    ("txn.commit_log", [ Alcotest.test_case "statuses" `Quick test_commit_log ]);
    ( "txn.manager",
      [
        Alcotest.test_case "begin/commit" `Quick test_mgr_begin_commit;
        Alcotest.test_case "view of earlier commit" `Quick test_mgr_view_sees_earlier_commit;
        Alcotest.test_case "abort" `Quick test_mgr_abort;
        Alcotest.test_case "oldest/horizon" `Quick test_mgr_oldest_horizon;
        Alcotest.test_case "llt identification" `Quick test_mgr_llt_views;
        Alcotest.test_case "avg duration EWMA" `Quick test_mgr_avg_duration;
        QCheck_alcotest.to_alcotest qcheck_view_consistency;
        QCheck_alcotest.to_alcotest qcheck_snapshot_read_unique;
      ] );
  ]
