(* Tests for repro_sim: clock, resources (latches), scheduler. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Clock *)

let test_clock_conversions () =
  check_int "us" 3_000 (Clock.us 3);
  check_int "ms" 2_000_000 (Clock.ms 2);
  check_int "seconds" 1_500_000_000 (Clock.seconds 1.5);
  check_bool "roundtrip" true (abs_float (Clock.to_seconds (Clock.seconds 2.5) -. 2.5) < 1e-9)

(* -------------------------------------------------------------------- *)
(* Resource *)

let test_resource_uncontended () =
  let r = Resource.create "latch" in
  let done_at = Resource.acquire r ~now:100 ~hold:50 in
  check_int "grant immediately" 150 done_at;
  check_int "no waiting" 0 (Resource.wait_time r);
  check_int "busy" 50 (Resource.busy_time r)

let test_resource_queueing () =
  let r = Resource.create "latch" in
  let a = Resource.acquire r ~now:0 ~hold:100 in
  check_int "first ends at 100" 100 a;
  (* Second arrival at t=10 must wait until 100. *)
  let b = Resource.acquire r ~now:10 ~hold:5 in
  check_int "second ends at 105" 105 b;
  check_int "waited 90" 90 (Resource.wait_time r);
  check_int "two acquisitions" 2 (Resource.acquisitions r)

let test_resource_gap () =
  let r = Resource.create "latch" in
  ignore (Resource.acquire r ~now:0 ~hold:10);
  (* Arrival after the resource went idle: no wait. *)
  let b = Resource.acquire r ~now:50 ~hold:10 in
  check_int "no queueing after idle" 60 b;
  check_int "wait stays 0" 0 (Resource.wait_time r)

let test_resource_negative_hold () =
  let r = Resource.create "latch" in
  Alcotest.check_raises "negative hold" (Invalid_argument "Resource.acquire: negative hold")
    (fun () -> ignore (Resource.acquire r ~now:0 ~hold:(-1)))

(* -------------------------------------------------------------------- *)
(* Scheduler *)

let test_scheduler_time_order () =
  let sched = Scheduler.create () in
  let log = ref [] in
  Scheduler.spawn sched ~name:"b" ~at:20 (fun now ->
      log := ("b", now) :: !log;
      Scheduler.Finished);
  Scheduler.spawn sched ~name:"a" ~at:10 (fun now ->
      log := ("a", now) :: !log;
      Scheduler.Finished);
  ignore (Scheduler.run sched ~until:100);
  check_bool "a before b" true (List.rev !log = [ ("a", 10); ("b", 20) ])

let test_scheduler_periodic () =
  let sched = Scheduler.create () in
  let ticks = ref 0 in
  Scheduler.spawn sched ~name:"tick" ~at:0 (fun now ->
      incr ticks;
      Scheduler.Sleep_until (now + 10));
  ignore (Scheduler.run sched ~until:95);
  (* fires at 0,10,...,90 *)
  check_int "ticks" 10 !ticks

let test_scheduler_until_boundary () =
  let sched = Scheduler.create () in
  let fired = ref false in
  Scheduler.spawn sched ~name:"late" ~at:101 (fun _ ->
      fired := true;
      Scheduler.Finished);
  ignore (Scheduler.run sched ~until:100);
  check_bool "beyond-horizon process not run" false !fired

let test_scheduler_progress_guarantee () =
  (* A process that reschedules at its own wake time must still make
     the simulation advance rather than loop forever. *)
  let sched = Scheduler.create () in
  let steps = ref 0 in
  Scheduler.spawn sched ~name:"stutter" ~at:0 (fun now ->
      incr steps;
      if !steps > 1000 then Scheduler.Finished else Scheduler.Sleep_until now);
  let t = Scheduler.run sched ~until:10_000 in
  check_bool "advanced past 0" true (t > 0);
  check_int "step cap reached" 1001 !steps

let test_scheduler_tie_break_registration_order () =
  let sched = Scheduler.create () in
  let log = ref [] in
  List.iter
    (fun name ->
      Scheduler.spawn sched ~name ~at:5 (fun _ ->
          log := name :: !log;
          Scheduler.Finished))
    [ "first"; "second"; "third" ];
  ignore (Scheduler.run sched ~until:10);
  check_bool "registration order" true (List.rev !log = [ "first"; "second"; "third" ])

let test_scheduler_interleaving_with_resource () =
  (* Two workers contending on one latch: completions must serialize. *)
  let sched = Scheduler.create () in
  let latch = Resource.create "page" in
  let completions = ref [] in
  let spawn_worker name at =
    Scheduler.spawn sched ~name ~at (fun now ->
        let fin = Resource.acquire latch ~now ~hold:100 in
        completions := (name, fin) :: !completions;
        Scheduler.Finished)
  in
  spawn_worker "w1" 0;
  spawn_worker "w2" 10;
  ignore (Scheduler.run sched ~until:1_000);
  check_bool "serialized" true (List.rev !completions = [ ("w1", 100); ("w2", 200) ])

(* -------------------------------------------------------------------- *)
(* Queue_model *)

let test_queue_model_idle () =
  let q = Queue_model.create "mutex" in
  let t = Queue_model.service q ~now:1000 ~hold:100 in
  check_int "no delay before utilization is measured" 1100 t;
  check_bool "utilization starts at 0" true (Queue_model.utilization q = 0.)

let test_queue_model_contention_grows_delay () =
  let q = Queue_model.create ~window:(Clock.us 1) "mutex" in
  (* Saturate a window: busy 100% of it. *)
  let now = ref 0 in
  for _ = 1 to 100 do
    now := !now + 500;
    ignore (Queue_model.service q ~now:!now ~hold:600)
  done;
  check_bool "utilization measured high" true (Queue_model.utilization q > 0.5);
  let t = Queue_model.service q ~now:(!now + 1000) ~hold:100 in
  check_bool "queueing delay charged" true (t > !now + 1000 + 100);
  check_bool "busy time accumulated" true (Queue_model.busy_time q > 0)

let test_queue_model_invalid () =
  let q = Queue_model.create "m" in
  Alcotest.check_raises "negative hold" (Invalid_argument "Queue_model.service: negative hold")
    (fun () -> ignore (Queue_model.service q ~now:0 ~hold:(-1)))

let suites =
  [
    ( "sim.clock",
      [ Alcotest.test_case "conversions" `Quick test_clock_conversions ] );
    ( "sim.queue_model",
      [
        Alcotest.test_case "idle service" `Quick test_queue_model_idle;
        Alcotest.test_case "contention adds delay" `Quick test_queue_model_contention_grows_delay;
        Alcotest.test_case "invalid hold" `Quick test_queue_model_invalid;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "uncontended" `Quick test_resource_uncontended;
        Alcotest.test_case "queueing" `Quick test_resource_queueing;
        Alcotest.test_case "idle gap" `Quick test_resource_gap;
        Alcotest.test_case "negative hold rejected" `Quick test_resource_negative_hold;
      ] );
    ( "sim.scheduler",
      [
        Alcotest.test_case "time order" `Quick test_scheduler_time_order;
        Alcotest.test_case "periodic process" `Quick test_scheduler_periodic;
        Alcotest.test_case "until boundary" `Quick test_scheduler_until_boundary;
        Alcotest.test_case "progress guarantee" `Quick test_scheduler_progress_guarantee;
        Alcotest.test_case "deterministic tie-break" `Quick test_scheduler_tie_break_registration_order;
        Alcotest.test_case "latch serialization" `Quick test_scheduler_interleaving_with_resource;
      ] );
  ]
