(* Model-based testing of the full vDriver stack.

   A reference model keeps, per record, the complete committed version
   history (never pruned). Random interleavings of begin/read/write/
   commit/abort/GC are executed both against the model and against the
   real SIRO slots + Driver; every read's result must match the model's
   snapshot semantics, no matter what vSorter/vCutter pruned or cut in
   between. This is the representation invariant plus snapshot isolation,
   checked end to end. *)

let records = 6

(* ---------- reference model ---------- *)

module Model = struct
  type version = { vs : Timestamp.t; payload : int }
  type t = { history : version list array } (* newest first, committed only *)

  let create () =
    { history = Array.init records (fun rid -> [ { vs = 0; payload = rid } ]) }

  (* The version a view must read: the newest whose creator is committed
     before the view. *)
  let read t view rid =
    let rec find = function
      | [] -> None
      | v :: rest ->
          if Read_view.committed_before view v.vs then Some v.payload else find rest
    in
    find t.history.(rid)

  let commit_write t rid ~vs ~payload =
    t.history.(rid) <- { vs; payload } :: t.history.(rid)
end

(* ---------- operations ---------- *)

type op =
  | Begin
  | Read of int * int (* txn slot, rid *)
  | Write of int * int (* txn slot, rid *)
  | Commit of int
  | Abort of int
  | Gc
  | Crash

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (2, return Begin);
        (6, map2 (fun t r -> Read (t, r)) (int_bound 4) (int_bound (records - 1)));
        (4, map2 (fun t r -> Write (t, r)) (int_bound 4) (int_bound (records - 1)));
        (2, map (fun t -> Commit t) (int_bound 4));
        (1, map (fun t -> Abort t) (int_bound 4));
        (1, return Gc);
        (1, return Crash);
      ])

let ops_gen = QCheck.Gen.list_size QCheck.Gen.(50 -- 400) op_gen

(* ---------- harness ---------- *)

(* Per-transaction bookkeeping: the model applies writes only at commit
   (the engine's uncommitted versions are invisible to others anyway,
   and the model reads through views, so timing matches). *)
type live_txn = {
  txn : Txn.t;
  mutable writes : (int * int) list; (* rid, payload — newest first *)
}

let run_scenario ops =
  let mgr = Txn_manager.create () in
  let config =
    {
      State.default_config with
      State.segment_bytes = 300;
      zone_refresh_period = Clock.us 400;
      classifier = Classifier.create ~delta_hot:(Clock.us 300) ~delta_llt:(Clock.us 800) ();
    }
  in
  let driver = Driver.create ~config mgr in
  let slots =
    Array.init records (fun rid -> Siro.create ~rid ~bytes:100 ~payload:rid ~vs:0 ~vs_time:0)
  in
  let model = Model.create () in
  let live : live_txn option array = Array.make 5 None in
  let now = ref 0 in
  let payload_counter = ref 100 in
  let tick () =
    now := !now + Clock.us 137;
    !now
  in
  let ok = ref true in
  let fail_reason = ref "" in
  let check_read (lt : live_txn) rid =
    (* Engine-side read: own writes first, then in-row, then off-row. *)
    let engine_result =
      match List.assoc_opt rid lt.writes with
      | Some p -> Some p
      | None -> (
          match Siro.read_inrow slots.(rid) lt.txn.Txn.view with
          | Some v -> Some v.Version.payload
          | None -> (
              match Driver.read driver lt.txn.Txn.view ~rid with
              | Some (v, _, _) -> Some v.Version.payload
              | None -> None))
    in
    let model_result =
      match List.assoc_opt rid lt.writes with
      | Some p -> Some p
      | None -> Model.read model lt.txn.Txn.view rid
    in
    if engine_result <> model_result then begin
      ok := false;
      fail_reason :=
        Printf.sprintf "read r%d by T%d: engine=%s model=%s" rid lt.txn.Txn.tid
          (match engine_result with Some p -> string_of_int p | None -> "none")
          (match model_result with Some p -> string_of_int p | None -> "none")
    end
  in
  let apply = function
    | Begin -> (
        match Array.find_index (fun s -> s = None) live with
        | Some i -> live.(i) <- Some { txn = Txn_manager.begin_txn mgr ~now:(tick ()); writes = [] }
        | None -> ())
    | Read (slot, rid) -> (
        match live.(slot) with Some lt -> check_read lt rid | None -> ())
    | Write (slot, rid) -> (
        match live.(slot) with
        | Some lt ->
            if not (Cc.write_conflict mgr lt.txn ~current_vs:(Siro.current slots.(rid)).Version.vs)
            then begin
              incr payload_counter;
              let p = !payload_counter in
              let r =
                Siro.update slots.(rid) ~vs:lt.txn.Txn.tid ~vs_time:(tick ()) ~payload:p
                  ~bytes:100
              in
              (match r.Siro.relocated with
              | Some v -> ignore (Driver.relocate driver v ~now:!now)
              | None -> ());
              lt.writes <- (rid, p) :: List.remove_assoc rid lt.writes
            end
        | None -> ())
    | Commit (slot) -> (
        match live.(slot) with
        | Some lt ->
            Txn_manager.commit mgr lt.txn ~now:(tick ());
            List.iter
              (fun (rid, payload) -> Model.commit_write model rid ~vs:lt.txn.Txn.tid ~payload)
              (List.rev lt.writes);
            live.(slot) <- None
        | None -> ())
    | Abort (slot) -> (
        match live.(slot) with
        | Some lt ->
            List.iter (fun (rid, _) -> Siro.abort_undo slots.(rid) ~t_aborted:lt.txn.Txn.tid)
              lt.writes;
            Txn_manager.abort mgr lt.txn ~now:(tick ());
            live.(slot) <- None
        | None -> ())
    | Gc -> ignore (Driver.maintain driver ~now:(tick ()))
    | Crash ->
        (* Every live transaction is a loser: roll its writes back by
           bit toggles, then drop all off-row state wholesale (§3.5).
           The committed history must stay readable afterwards. *)
        Array.iteri
          (fun i slot ->
            match slot with
            | Some lt ->
                List.iter
                  (fun (rid, _) -> Siro.abort_undo slots.(rid) ~t_aborted:lt.txn.Txn.tid)
                  lt.writes;
                Txn_manager.abort mgr lt.txn ~now:(tick ());
                live.(i) <- None
            | None -> ())
          live;
        Driver.crash_restart driver
  in
  List.iter (fun op -> if !ok then apply op) ops;
  (* Final sweep: every live reader re-checks every record. *)
  Array.iter
    (fun slot ->
      match slot with
      | Some lt ->
          if !ok then
            for rid = 0 to records - 1 do
              if !ok then check_read lt rid
            done
      | None -> ())
    live;
  (!ok, !fail_reason)

let qcheck_model =
  QCheck.Test.make ~name:"driver agrees with reference MVCC model" ~count:120
    (QCheck.make ops_gen) (fun ops ->
      let ok, reason = run_scenario ops in
      if not ok then QCheck.Test.fail_report reason else true)

let suites = [ ("model", [ QCheck_alcotest.to_alcotest qcheck_model ]) ]
