(* Tests for repro_deadzone: Definition 3.4 zone construction and
   Theorem 3.5 pruning, checked against the brute-force Definition 3.3
   on randomized histories. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Zone construction (Definition 3.4) *)

let test_zones_empty_live () =
  let z = Zone_set.make ~live:[] ~now_ts:100 in
  check_bool "single zone [-inf, CT]" true (Zone_set.zones z = [ (min_int, 100) ]);
  check_int "no boundaries" 0 (Zone_set.boundary_count z)

let test_zones_structure () =
  let z = Zone_set.make ~live:[ 30; 10; 20 ] ~now_ts:100 in
  check_bool "zones tile time" true
    (Zone_set.zones z = [ (min_int, 10); (10, 20); (20, 30); (30, 100) ])

let test_zones_reject_duplicates () =
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Zone_set.make: duplicate begin timestamp") (fun () ->
      ignore (Zone_set.make ~live:[ 5; 5 ] ~now_ts:10))

let test_zones_reject_future_live () =
  Alcotest.check_raises "live >= now"
    (Invalid_argument "Zone_set.make: live begin timestamp not before now_ts") (fun () ->
      ignore (Zone_set.make ~live:[ 10 ] ~now_ts:10))

(* -------------------------------------------------------------------- *)
(* Theorem 3.5 on the paper's running example (Figures 1 and 4) *)

let test_prune_figure1 () =
  (* Record A: versions A48=(48,50), A50=(50,97), A97=(97,inf as record).
     A long transaction began at 49 and a short one at 100; CT=120. *)
  let z = Zone_set.make ~live:[ 49; 100 ] ~now_ts:120 in
  check_bool "A48 pinned by the LLT" false (Zone_set.prunable z ~vs:48 ~ve:50);
  check_bool "A50 dead inside the wide zone [49,100]" true (Zone_set.prunable z ~vs:50 ~ve:97)

let test_prune_empty_live_drops_everything () =
  (* The "critical, overlooked rule": with no live transactions the
     whole version set is reclaimable. *)
  let z = Zone_set.make ~live:[] ~now_ts:1000 in
  check_bool "any old version prunable" true (Zone_set.prunable z ~vs:1 ~ve:999);
  check_bool "but not past CT" false (Zone_set.prunable z ~vs:1 ~ve:1000)

let test_prune_boundary_strictness () =
  let z = Zone_set.make ~live:[ 50 ] ~now_ts:100 in
  (* Zones: [-inf,50], [50,100]. Strict containment required. *)
  check_bool "ends exactly at boundary" false (Zone_set.prunable z ~vs:40 ~ve:50);
  check_bool "starts exactly at boundary" false (Zone_set.prunable z ~vs:50 ~ve:60);
  check_bool "strictly inside first" true (Zone_set.prunable z ~vs:40 ~ve:49);
  check_bool "strictly inside second" true (Zone_set.prunable z ~vs:51 ~ve:60)

let test_covers_segment () =
  let z = Zone_set.make ~live:[ 50 ] ~now_ts:100 in
  check_bool "segment inside" true (Zone_set.covers z ~lo:60 ~hi:80);
  check_bool "segment straddles boundary" false (Zone_set.covers z ~lo:40 ~hi:60);
  check_bool "point segment" true (Zone_set.covers z ~lo:70 ~hi:70)

let test_prune_requires_valid_interval () =
  let z = Zone_set.make ~live:[] ~now_ts:10 in
  Alcotest.check_raises "vs >= ve" (Invalid_argument "Zone_set.prunable: requires vs < ve")
    (fun () -> ignore (Zone_set.prunable z ~vs:5 ~ve:5))

(* -------------------------------------------------------------------- *)
(* dead_spec (Definition 3.3) sanity *)

let test_dead_spec () =
  check_bool "live inside" false (Prune.dead_spec ~live:[ 5 ] ~vs:1 ~ve:9);
  check_bool "live outside" true (Prune.dead_spec ~live:[ 10 ] ~vs:1 ~ve:9);
  check_bool "no live" true (Prune.dead_spec ~live:[] ~vs:1 ~ve:9);
  check_bool "live at vs (strict)" true (Prune.dead_spec ~live:[ 1 ] ~vs:1 ~ve:9)

(* -------------------------------------------------------------------- *)
(* Property: Theorem 3.5 == Definition 3.3 on unique-timestamp
   histories (both directions: prunability and completeness). *)

(* Draw distinct timestamps and split them into live begin ts and a
   version interval, with now beyond all of them. *)
let theorem_case_gen =
  QCheck.Gen.(
    let* raw = list_size (2 -- 25) (1 -- 1000) in
    let distinct = List.sort_uniq compare raw in
    if List.length distinct < 2 then return None
    else
      let* shuffled = shuffle_l distinct in
      match shuffled with
      | a :: b :: live ->
          let vs = min a b and ve = max a b in
          return (Some (live, vs, ve))
      | _ -> return None)

let qcheck_theorem_matches_spec =
  QCheck.Test.make ~name:"Theorem 3.5 <=> Definition 3.3 (unique ts)" ~count:2000
    (QCheck.make theorem_case_gen)
    (fun case ->
      match case with
      | None -> QCheck.assume_fail ()
      | Some (live, vs, ve) ->
          let now_ts = 2000 in
          let z = Zone_set.make ~live ~now_ts in
          Zone_set.prunable z ~vs ~ve = (Prune.dead_spec ~live ~vs ~ve && ve < now_ts))

let qcheck_covers_matches_prunable =
  QCheck.Test.make ~name:"segment covers == version prunable on same interval" ~count:1000
    (QCheck.make theorem_case_gen)
    (fun case ->
      match case with
      | None -> QCheck.assume_fail ()
      | Some (live, vs, ve) ->
          let z = Zone_set.make ~live ~now_ts:2000 in
          (* covers uses a closed [lo,hi]; align by shrinking the open
             interval's interior. *)
          Zone_set.covers z ~lo:vs ~hi:ve = Zone_set.prunable z ~vs ~ve)

(* -------------------------------------------------------------------- *)
(* Read-view world: soundness of prunable_fast. *)

(* Build a real manager history: writers commit in sequence creating a
   version history for one record; some reader transactions stay live. *)
let history_gen =
  QCheck.Gen.(
    let* writer_count = 2 -- 12 in
    let* reader_starts = list_size (0 -- 6) (0 -- 100) in
    return (writer_count, reader_starts))

let build_history (writer_count, reader_starts) =
  let mgr = Txn_manager.create () in
  let readers = ref [] in
  let version_bounds = ref [] in
  let reader_starts = List.sort compare reader_starts in
  let next_reader = ref reader_starts in
  (* Interleave: before each writer, possibly start readers. *)
  for i = 0 to writer_count - 1 do
    (match !next_reader with
    | r :: rest when r mod writer_count <= i ->
        readers := Txn_manager.begin_txn mgr ~now:i :: !readers;
        next_reader := rest
    | _ :: _ | [] -> ());
    let w = Txn_manager.begin_txn mgr ~now:i in
    version_bounds := w.Txn.tid :: !version_bounds;
    Txn_manager.commit mgr w ~now:i
  done;
  (mgr, List.rev !version_bounds, !readers)

let qcheck_prunable_fast_sound =
  QCheck.Test.make ~name:"prunable_fast never prunes a live snapshot read" ~count:500
    (QCheck.make history_gen)
    (fun case ->
      let mgr, bounds, _readers = build_history case in
      let zones = Zone_set.of_txn_manager mgr in
      let views = Txn_manager.live_views mgr in
      let log = Txn_manager.commit_log mgr in
      (* All adjacent version intervals of the record's history. *)
      let rec intervals = function
        | a :: (b :: _ as rest) -> (a, b) :: intervals rest
        | [ _ ] | [] -> []
      in
      List.for_all
        (fun (vs, ve) ->
          let fast = Prune.prunable_fast zones ~commit_log:log ~vs ~ve in
          let someone_needs_it =
            List.exists (fun v -> Prune.snapshot_read_of_view v ~vs ~ve) views
          in
          (not fast) || not someone_needs_it)
        (intervals bounds))

(* Regression for the subtlety documented in [Prune.commit_interval]: a
   successor that *began* before the reader but *committed* after it
   must not make the version prunable. Begin-timestamp intervals say
   "prunable"; commit-time intervals correctly say "keep". *)
let test_prune_commit_time_translation () =
  let mgr = Txn_manager.create () in
  let a = Txn_manager.begin_txn mgr ~now:0 in
  Txn_manager.commit mgr a ~now:1;
  let b = Txn_manager.begin_txn mgr ~now:2 in
  let reader = Txn_manager.begin_txn mgr ~now:3 in
  Txn_manager.commit mgr b ~now:4;
  (* Version (a, b): reader began after b began, but before b committed,
     so it is the reader's snapshot read. *)
  let vs = a.Txn.tid and ve = b.Txn.tid in
  check_bool "reader needs the version" true
    (Prune.snapshot_read_of_view reader.Txn.view ~vs ~ve);
  let zones = Zone_set.of_txn_manager mgr in
  let log = Txn_manager.commit_log mgr in
  (* The naive begin-ts zone check would prune: reader.tid > ve. *)
  check_bool "begin-ts check is wrong here" true (Zone_set.prunable zones ~vs ~ve);
  check_bool "commit-time check keeps it" false (Prune.prunable_fast zones ~commit_log:log ~vs ~ve);
  (* Once the reader is gone, it becomes prunable. *)
  Txn_manager.commit mgr reader ~now:5;
  let zones = Zone_set.of_txn_manager mgr in
  check_bool "prunable after reader commits" true
    (Prune.prunable_fast zones ~commit_log:log ~vs ~ve)

let qcheck_stale_zones_conservative =
  QCheck.Test.make ~name:"stale zone snapshot cannot prune versions for new txns" ~count:500
    (QCheck.make history_gen)
    (fun case ->
      let mgr, _bounds, _ = build_history case in
      (* Snapshot zones now... *)
      let stale_zones = Zone_set.of_txn_manager mgr in
      let stale_views = Txn_manager.live_views mgr in
      (* ...then the world moves on: new writers create new versions and
         a new reader begins. *)
      let w1 = Txn_manager.begin_txn mgr ~now:1000 in
      Txn_manager.commit mgr w1 ~now:1001;
      let w2 = Txn_manager.begin_txn mgr ~now:1002 in
      let reader = Txn_manager.begin_txn mgr ~now:1004 in
      Txn_manager.commit mgr w2 ~now:1005;
      ignore stale_views;
      (* The version (w1, w2) is the snapshot read of the new reader
         (w2 was still active when it began); the stale snapshot must
         not prune it. *)
      let vs = w1.Txn.tid and ve = w2.Txn.tid in
      let visible = Prune.snapshot_read_of_view reader.Txn.view ~vs ~ve in
      let pruned =
        Prune.prunable_fast stale_zones ~commit_log:(Txn_manager.commit_log mgr) ~vs ~ve
      in
      visible && not pruned)

let qcheck_zone_structure =
  QCheck.Test.make ~name:"Def 3.4: m live txns yield m+1 contiguous zones" ~count:300
    QCheck.(list_of_size Gen.(0 -- 30) (int_range 1 999))
    (fun raw ->
      let live = List.sort_uniq compare raw in
      let z = Zone_set.make ~live ~now_ts:1000 in
      let zones = Zone_set.zones z in
      List.length zones = List.length live + 1
      && (* contiguous: each zone starts where the previous ended *)
      fst (List.hd zones) = min_int
      && snd (List.nth zones (List.length zones - 1)) = 1000
      &&
      let rec contiguous = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 = s2 && contiguous rest
        | [ _ ] | [] -> true
      in
      contiguous zones)

let qcheck_prunable_antimonotone_in_interval =
  (* Widening a version's interval can only make it harder to prune. *)
  QCheck.Test.make ~name:"prunability is antimonotone in interval width" ~count:500
    QCheck.(quad (list_of_size Gen.(0 -- 15) (int_range 1 500)) (int_range 1 400) (int_range 1 50) (int_range 1 50))
    (fun (raw, vs, shrink_l, widen_r) ->
      let live = List.sort_uniq compare raw in
      let z = Zone_set.make ~live ~now_ts:1000 in
      let ve = vs + shrink_l + 1 in
      let wide_vs = max 0 (vs - widen_r) in
      let wide_ve = min 999 (ve + widen_r) in
      QCheck.assume (wide_vs < wide_ve);
      (* wide interval prunable => narrow interval prunable *)
      (not (Zone_set.prunable z ~vs:wide_vs ~ve:wide_ve)) || Zone_set.prunable z ~vs ~ve)

let suites =
  [
    ( "deadzone.zones",
      [
        Alcotest.test_case "empty live set" `Quick test_zones_empty_live;
        Alcotest.test_case "zone structure" `Quick test_zones_structure;
        Alcotest.test_case "duplicate rejection" `Quick test_zones_reject_duplicates;
        Alcotest.test_case "future live rejection" `Quick test_zones_reject_future_live;
      ] );
    ( "deadzone.prune",
      [
        Alcotest.test_case "figure 1 example" `Quick test_prune_figure1;
        Alcotest.test_case "empty live drops all" `Quick test_prune_empty_live_drops_everything;
        Alcotest.test_case "boundary strictness" `Quick test_prune_boundary_strictness;
        Alcotest.test_case "segment covers" `Quick test_covers_segment;
        Alcotest.test_case "interval validation" `Quick test_prune_requires_valid_interval;
        Alcotest.test_case "dead_spec" `Quick test_dead_spec;
        Alcotest.test_case "commit-time translation" `Quick test_prune_commit_time_translation;
        QCheck_alcotest.to_alcotest qcheck_theorem_matches_spec;
        QCheck_alcotest.to_alcotest qcheck_covers_matches_prunable;
        QCheck_alcotest.to_alcotest qcheck_prunable_fast_sound;
        QCheck_alcotest.to_alcotest qcheck_stale_zones_conservative;
        QCheck_alcotest.to_alcotest qcheck_zone_structure;
        QCheck_alcotest.to_alcotest qcheck_prunable_antimonotone_in_interval;
      ] );
  ]
