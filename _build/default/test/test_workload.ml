(* Workload library tests: access patterns, phase configs, and the
   discrete-event runner end to end on every engine. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny_schema =
  { Schema.default with Schema.tables = 2; rows_per_table = 50; record_bytes = 64 }

(* -------------------------------------------------------------------- *)
(* Access *)

let test_access_rids_valid () =
  let rng = Rng.create 1 in
  List.iter
    (fun pattern ->
      let a = Access.create tiny_schema pattern in
      for _ = 1 to 5_000 do
        check_bool "valid rid" true (Schema.valid_rid tiny_schema (Access.sample a rng))
      done)
    [ Access.Uniform; Access.Zipfian 1.2 ]

let test_access_zipf_skews_rows () =
  let rng = Rng.create 2 in
  let a = Access.create tiny_schema (Access.Zipfian 1.2) in
  let row0 = ref 0 and total = 10_000 in
  for _ = 1 to total do
    let rid = Access.sample a rng in
    if rid mod tiny_schema.Schema.rows_per_table = 0 then incr row0
  done;
  (* Row 0 of each table is the hottest; uniform would give ~2%. *)
  check_bool "row 0 is hot" true (!row0 > total / 10)

let test_pattern_to_string () =
  check_bool "uniform" true (Access.pattern_to_string Access.Uniform = "uniform");
  check_bool "zipf" true (Access.pattern_to_string (Access.Zipfian 1.2) = "zipf(1.20)")

(* -------------------------------------------------------------------- *)
(* Exp_config *)

let test_phases () =
  let cfg =
    {
      Exp_config.default with
      Exp_config.phases =
        [
          { Exp_config.at_s = 0.; pattern = Access.Uniform };
          { Exp_config.at_s = 10.; pattern = Access.Zipfian 1.2 };
        ];
    }
  in
  check_bool "phase 1" true (Exp_config.pattern_at cfg 5. = Access.Uniform);
  check_bool "phase boundary" true (Exp_config.pattern_at cfg 10. = Access.Zipfian 1.2);
  check_bool "phase 2" true (Exp_config.pattern_at cfg 30. = Access.Zipfian 1.2)

(* -------------------------------------------------------------------- *)
(* Runner *)

let small_cfg ?(llts = []) ?(duration_s = 0.5) () =
  {
    Exp_config.default with
    Exp_config.name = "test";
    duration_s;
    workers = 4;
    reads_per_txn = 2;
    writes_per_txn = 1;
    schema = tiny_schema;
    llts;
    sample_period_s = 0.1;
    gc_period = Clock.ms 5;
  }

let engines =
  [
    ("pg", fun schema -> Inrow_engine.create schema);
    ("mysql", fun schema -> Offrow_engine.create schema);
    ("pg-vdriver", fun schema -> Siro_engine.create ~flavor:`Pg schema);
    ("mysql-vdriver", fun schema -> Siro_engine.create ~flavor:`Mysql schema);
  ]

let test_runner_smoke (name, engine) () =
  let r = Runner.run ~engine (small_cfg ()) in
  check_bool (name ^ " commits") true (r.Runner.commits > 100);
  check_bool "throughput series" true (List.length r.Runner.throughput >= 1);
  check_bool "space series sampled" true (List.length r.Runner.version_space >= 3);
  check_bool "cdf covers all records" true (r.Runner.chain_cdf <> []);
  check_bool "no llt reads without llts" true (r.Runner.llt_reads = 0)

let test_runner_deterministic () =
  let engine = List.assoc "mysql-vdriver" engines in
  let r1 = Runner.run ~engine (small_cfg ()) in
  let r2 = Runner.run ~engine (small_cfg ()) in
  check_int "same seed, same commits" r1.Runner.commits r2.Runner.commits;
  check_int "same conflicts" r1.Runner.conflicts r2.Runner.conflicts;
  let r3 = Runner.run ~engine { (small_cfg ()) with Exp_config.seed = 7 } in
  check_bool "different seed, different run" true (r3.Runner.commits <> r1.Runner.commits)

let test_runner_with_llt () =
  let llts = [ { Exp_config.start_s = 0.1; duration_s = 0.3; count = 2 } ] in
  let engine = List.assoc "mysql-vdriver" engines in
  let r = Runner.run ~engine (small_cfg ~llts ~duration_s:0.6 ()) in
  check_bool "llt performed reads" true (r.Runner.llt_reads > 10);
  check_bool "oltp kept committing" true (r.Runner.commits > 100)

let test_runner_llt_hurts_vanilla () =
  (* The headline effect, as a regression test: the same LLT hurts the
     vanilla engine far more than the vDriver engine. *)
  let llts = [ { Exp_config.start_s = 0.2; duration_s = 1.2; count = 2 } ] in
  let cfg =
    {
      (small_cfg ~llts ~duration_s:1.5 ()) with
      Exp_config.workers = 8;
      schema = { tiny_schema with Schema.rows_per_table = 100 };
    }
  in
  let vanilla = Runner.run ~engine:(List.assoc "pg" engines) cfg in
  let vdriver = Runner.run ~engine:(List.assoc "pg-vdriver" engines) cfg in
  let drop (r : Runner.result) =
    let before = Runner.avg_throughput r ~between:(0.0, 0.19) in
    let during = Runner.avg_throughput r ~between:(0.8, 1.4) in
    during /. before
  in
  check_bool "vanilla degrades more" true (drop vanilla < drop vdriver);
  check_bool "vdriver space stays lower" true
    (Runner.peak_space vdriver < Runner.peak_space vanilla)

let test_helpers () =
  let engine = List.assoc "pg" engines in
  let r = Runner.run ~engine (small_cfg ()) in
  check_bool "avg throughput positive" true (Runner.avg_throughput r ~between:(0., 1.) > 0.);
  check_bool "peak >= final" true (Runner.peak_space r >= 0);
  check_bool "peak chain sane" true (Runner.peak_chain r >= 1)

let suites =
  [
    ( "workload.access",
      [
        Alcotest.test_case "rids valid" `Quick test_access_rids_valid;
        Alcotest.test_case "zipf skews rows" `Quick test_access_zipf_skews_rows;
        Alcotest.test_case "pattern names" `Quick test_pattern_to_string;
      ] );
    ("workload.config", [ Alcotest.test_case "phases" `Quick test_phases ]);
    ( "workload.runner",
      List.map
        (fun (name, _ as e) ->
          Alcotest.test_case ("smoke " ^ name) `Quick (test_runner_smoke e))
        engines
      @ [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "llt reads" `Quick test_runner_with_llt;
          Alcotest.test_case "llt hurts vanilla more" `Slow test_runner_llt_hurts_vanilla;
          Alcotest.test_case "helpers" `Quick test_helpers;
        ] );
  ]
