(* Engine-level integration tests, parameterized over all four engines:
   snapshot isolation semantics, conflict handling, abort/crash
   recovery, garbage collection, and the representation invariant under
   a long-lived reader. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny_schema =
  { Schema.default with Schema.tables = 1; rows_per_table = 8; record_bytes = 64 }

let factories =
  [
    ("pg", fun () -> Inrow_engine.create tiny_schema);
    ("mysql", fun () -> Offrow_engine.create tiny_schema);
    ("mysql-interval-gc", fun () -> Offrow_engine.create ~gc:`Interval_scan tiny_schema);
    ( "pg-vdriver",
      fun () ->
        Siro_engine.create
          ~driver_config:
            {
              State.default_config with
              State.segment_bytes = 256;
              zone_refresh_period = 0;
              classifier = Classifier.create ~delta_hot:(Clock.ms 1) ~delta_llt:(Clock.ms 5) ();
            }
          ~flavor:`Pg tiny_schema );
    ( "mysql-vdriver",
      fun () ->
        Siro_engine.create
          ~driver_config:
            {
              State.default_config with
              State.segment_bytes = 256;
              zone_refresh_period = 0;
              classifier = Classifier.create ~delta_hot:(Clock.ms 1) ~delta_llt:(Clock.ms 5) ();
            }
          ~flavor:`Mysql tiny_schema );
  ]

(* A little driver around the engine record: a mutable clock plus
   convenience wrappers that fail the test on unexpected outcomes. *)
type ctx = { eng : Engine.t; mutable now : Clock.time }

let mk factory = { eng = factory (); now = 0 }

let tick ctx =
  ctx.now <- ctx.now + Clock.us 50;
  ctx.now

let begin_txn ctx =
  let txn, t = ctx.eng.Engine.begin_txn ~now:(tick ctx) in
  ctx.now <- t;
  txn

let read ctx txn rid =
  let payload, t = ctx.eng.Engine.read txn ~rid ~now:(tick ctx) in
  check_bool "time advances on read" true (t > 0);
  ctx.now <- max ctx.now t;
  payload

let write_ok ctx txn rid payload =
  match ctx.eng.Engine.write txn ~rid ~payload ~now:(tick ctx) with
  | Engine.Committed_path t -> ctx.now <- max ctx.now t
  | Engine.Conflict _ -> Alcotest.failf "unexpected write conflict on rid %d" rid

let commit ctx txn = ctx.now <- max ctx.now (ctx.eng.Engine.commit txn ~now:(tick ctx))
let abort ctx txn = ctx.now <- max ctx.now (ctx.eng.Engine.abort txn ~now:(tick ctx))

let committed_write ctx rid payload =
  let txn = begin_txn ctx in
  write_ok ctx txn rid payload;
  commit ctx txn

let read_committed ctx rid =
  let txn = begin_txn ctx in
  let p = read ctx txn rid in
  commit ctx txn;
  p

(* -------------------------------------------------------------------- *)

let test_read_your_writes factory () =
  let ctx = mk factory in
  check_int "initial payload is rid" 3 (read_committed ctx 3);
  let txn = begin_txn ctx in
  write_ok ctx txn 3 42;
  check_int "own write visible" 42 (read ctx txn 3);
  write_ok ctx txn 3 43;
  check_int "second own write visible" 43 (read ctx txn 3);
  commit ctx txn;
  check_int "committed visible to later txn" 43 (read_committed ctx 3)

let test_repeatable_read factory () =
  let ctx = mk factory in
  committed_write ctx 0 10;
  let reader = begin_txn ctx in
  check_int "sees 10" 10 (read ctx reader 0);
  committed_write ctx 0 20;
  check_int "still sees 10 after concurrent commit" 10 (read ctx reader 0);
  check_int "fresh txn sees 20" 20 (read_committed ctx 0);
  check_int "reader still repeatable" 10 (read ctx reader 0);
  commit ctx reader

let test_uncommitted_invisible factory () =
  let ctx = mk factory in
  let writer = begin_txn ctx in
  write_ok ctx writer 5 99;
  check_int "other txn sees preimage" 5 (read_committed ctx 5);
  commit ctx writer;
  check_int "after commit it is visible" 99 (read_committed ctx 5)

let test_write_conflicts factory () =
  let ctx = mk factory in
  (* Uncommitted writer blocks (no-wait: conflict). *)
  let t1 = begin_txn ctx in
  write_ok ctx t1 2 7;
  let t2 = begin_txn ctx in
  (match ctx.eng.Engine.write t2 ~rid:2 ~payload:8 ~now:(tick ctx) with
  | Engine.Conflict _ -> ()
  | Engine.Committed_path _ -> Alcotest.fail "expected conflict with in-flight writer");
  abort ctx t2;
  commit ctx t1;
  (* First committer wins: t3 began before t4's commit to the row. *)
  let t3 = begin_txn ctx in
  let _ = read ctx t3 2 in
  committed_write ctx 2 9;
  (match ctx.eng.Engine.write t3 ~rid:2 ~payload:10 ~now:(tick ctx) with
  | Engine.Conflict _ -> ()
  | Engine.Committed_path _ -> Alcotest.fail "expected first-committer-wins conflict");
  abort ctx t3;
  check_int "row holds the winner's value" 9 (read_committed ctx 2)

let test_abort_restores factory () =
  let ctx = mk factory in
  committed_write ctx 1 11;
  let txn = begin_txn ctx in
  write_ok ctx txn 1 12;
  abort ctx txn;
  check_int "abort rolled back" 11 (read_committed ctx 1);
  (* The record stays writable afterwards. *)
  committed_write ctx 1 13;
  check_int "writable after abort" 13 (read_committed ctx 1)

let test_crash_recovery factory () =
  let ctx = mk factory in
  committed_write ctx 4 40;
  committed_write ctx 4 41;
  let loser = begin_txn ctx in
  write_ok ctx loser 4 666;
  let recovery_time = ctx.eng.Engine.crash () in
  check_bool "recovery time non-negative" true (recovery_time >= 0);
  check_int "loser rolled back at restart" 41 (read_committed ctx 4);
  committed_write ctx 4 42;
  check_int "engine usable after restart" 42 (read_committed ctx 4)

(* The §3.4 representation invariant, end to end: a long-lived reader
   must find its snapshot read across hundreds of displacing updates,
   whatever the engine stores versions in. *)
let test_llt_snapshot_survives factory () =
  let ctx = mk factory in
  committed_write ctx 6 1000;
  let llt = begin_txn ctx in
  check_int "snapshot at begin" 1000 (read ctx llt 6);
  for i = 1 to 300 do
    committed_write ctx 6 (1000 + i);
    (* Background GC runs while the LLT lives. *)
    if i mod 25 = 0 then ctx.now <- max ctx.now (ctx.eng.Engine.maintenance ~now:(tick ctx))
  done;
  check_int "snapshot still reachable after 300 updates" 1000 (read ctx llt 6);
  check_int "fresh txn reads newest" 1300 (read_committed ctx 6);
  commit ctx llt

let test_gc_reclaims factory () =
  let ctx = mk factory in
  for i = 1 to 200 do
    committed_write ctx (i mod 8) i
  done;
  (* No live readers: GC passes must drive version space to (near) zero. *)
  for _ = 1 to 20 do
    ctx.now <- max ctx.now (ctx.eng.Engine.maintenance ~now:(tick ctx))
  done;
  ctx.eng.Engine.finish ~now:ctx.now;
  for _ = 1 to 5 do
    ctx.now <- max ctx.now (ctx.eng.Engine.maintenance ~now:(tick ctx))
  done;
  let s = ctx.eng.Engine.sample () in
  (* MySQL reports allocated (not live) undo, which only shrinks on
     truncation; every engine must at least keep the valid chains
     trivial once nothing pins them. *)
  check_bool "chains collapse after GC" true (s.Engine.max_chain <= 3);
  let h = ctx.eng.Engine.chain_histogram () in
  check_int "every record histogrammed" (Schema.records tiny_schema) (Histogram.total h)

let test_sample_monotone_counters factory () =
  let ctx = mk factory in
  let s0 = ctx.eng.Engine.sample () in
  for i = 1 to 50 do
    committed_write ctx (i mod 8) i
  done;
  let s1 = ctx.eng.Engine.sample () in
  check_bool "redo grows" true (s1.Engine.redo_bytes >= s0.Engine.redo_bytes);
  check_bool "latch wait non-negative" true (s1.Engine.latch_wait >= 0)

(* -------------------------------------------------------------------- *)
(* Mvcc_search and Cc, engine-independent. *)

let test_mvcc_search () =
  (* Versions with creators 10,20,...,100 (all committed for a reader at
     ts 55): snapshot read is the one created at 50 (index 4). *)
  let view = Read_view.make ~creator:55 ~actives:[] ~high:55 in
  let vs_of i = (i + 1) * 10 in
  check_bool "middle" true (Mvcc_search.find_visible ~view ~len:10 ~vs_of = Some 4);
  (* A reader older than every version sees nothing. *)
  let old_view = Read_view.make ~creator:5 ~actives:[] ~high:5 in
  check_bool "none visible" true (Mvcc_search.find_visible ~view:old_view ~len:10 ~vs_of = None);
  (* Reader newer than all: last version. *)
  let new_view = Read_view.make ~creator:500 ~actives:[] ~high:500 in
  check_bool "newest" true (Mvcc_search.find_visible ~view:new_view ~len:10 ~vs_of = Some 9);
  check_bool "empty chain" true (Mvcc_search.find_visible ~view ~len:0 ~vs_of = None)

let qcheck_mvcc_search_matches_linear =
  QCheck.Test.make ~name:"binary search agrees with linear scan" ~count:500
    QCheck.(pair (int_range 1 30) (int_range 1 400))
    (fun (n, reader_raw) ->
      let reader = (reader_raw * 2) + 1 (* odd: never collides with even creators *) in
      let view = Read_view.make ~creator:reader ~actives:[] ~high:reader in
      let vs_of i = (i + 1) * 2 in
      let linear =
        let rec last_true i best =
          if i >= n then best
          else if Read_view.committed_before view (vs_of i) then last_true (i + 1) (Some i)
          else best
        in
        (* committed_before is a prefix property here; emulate strictly. *)
        last_true 0 None
      in
      Mvcc_search.find_visible ~view ~len:n ~vs_of = linear)

let test_cc_rules () =
  let mgr = Txn_manager.create () in
  let w = Txn_manager.begin_txn mgr ~now:0 in
  let t = Txn_manager.begin_txn mgr ~now:1 in
  check_bool "initial load never conflicts" false (Cc.write_conflict mgr t ~current_vs:0);
  check_bool "own version never conflicts" false (Cc.write_conflict mgr t ~current_vs:t.Txn.tid);
  check_bool "in-flight writer conflicts" true (Cc.write_conflict mgr t ~current_vs:w.Txn.tid);
  Txn_manager.commit mgr w ~now:2;
  (* w committed after t began: first committer wins. *)
  check_bool "committed-after-snapshot conflicts" true (Cc.write_conflict mgr t ~current_vs:w.Txn.tid);
  let t2 = Txn_manager.begin_txn mgr ~now:3 in
  check_bool "committed-before-snapshot is fine" false (Cc.write_conflict mgr t2 ~current_vs:w.Txn.tid);
  check_bool "newer tid conflicts" true (Cc.write_conflict mgr t ~current_vs:t2.Txn.tid)

let engine_cases name factory =
  let t case f = Alcotest.test_case case `Quick (f factory) in
  ( "engines." ^ name,
    [
      t "read your writes" test_read_your_writes;
      t "repeatable read" test_repeatable_read;
      t "uncommitted invisible" test_uncommitted_invisible;
      t "write conflicts" test_write_conflicts;
      t "abort restores" test_abort_restores;
      t "crash recovery" test_crash_recovery;
      t "LLT snapshot survives" test_llt_snapshot_survives;
      t "GC reclaims" test_gc_reclaims;
      t "samples" test_sample_monotone_counters;
    ] )

let suites =
  ( "engines.common",
    [
      Alcotest.test_case "mvcc_search" `Quick test_mvcc_search;
      QCheck_alcotest.to_alcotest qcheck_mvcc_search_matches_linear;
      Alcotest.test_case "write admission rules" `Quick test_cc_rules;
    ] )
  :: List.map (fun (name, factory) -> engine_cases name factory) factories
