(* Tests for repro_version: versions, chains (holes/fixup), segments,
   classifier. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_version ?(rid = 0) ?(bytes = 100) ?(payload = 0) ~vs ~ve () =
  Version.make ~rid ~vs ~ve ~vs_time:(vs * 1000) ~ve_time:(ve * 1000) ~bytes ~payload

(* A view that sees everything committed up to [high], nothing active. *)
let view_at high = Read_view.make ~creator:high ~actives:[] ~high

(* -------------------------------------------------------------------- *)
(* Version *)

let test_version_basics () =
  let v = mk_version ~vs:1 ~ve:5 () in
  check_int "interval" 4000 (Version.update_interval v);
  check_bool "not current" false (Version.is_current v);
  Alcotest.check_raises "vs >= ve" (Invalid_argument "Version.make: requires vs < ve")
    (fun () -> ignore (mk_version ~vs:5 ~ve:5 ()))

(* -------------------------------------------------------------------- *)
(* Chain *)

(* Build a chain with versions (1,2),(2,3),...,(n,n+1), oldest pushed
   first (push order is relocation order: oldest relocates first). *)
let build_chain n =
  let chain = Chain.create 0 in
  let nodes =
    List.init n (fun i ->
        let v = mk_version ~vs:(10 * (i + 1)) ~ve:(10 * (i + 2)) ~payload:(i + 1) () in
        Chain.push_newest chain v ~seg_id:0)
  in
  (chain, nodes)

let test_chain_push_and_ends () =
  let chain, _ = build_chain 3 in
  check_int "live length" 3 (Chain.live_length chain);
  (match (Chain.head chain, Chain.tail chain) with
  | Some h, Some t ->
      check_int "head newest" 30 h.Chain.version.Version.vs;
      check_int "tail oldest" 10 t.Chain.version.Version.vs
  | _ -> Alcotest.fail "missing ends");
  check_bool "invariants" true (Chain.check_invariants chain = Ok ())

let test_chain_out_of_order_rejected () =
  let chain = Chain.create 0 in
  ignore (Chain.push_newest chain (mk_version ~vs:5 ~ve:6 ()) ~seg_id:0);
  Alcotest.check_raises "out of order"
    (Invalid_argument "Chain.push_newest: out-of-order relocation") (fun () ->
      ignore (Chain.push_newest chain (mk_version ~vs:2 ~ve:3 ()) ~seg_id:0))

let test_chain_find_visible () =
  let chain, _ = build_chain 5 in
  (* A reader that began at ts 35 (sees creators 10..30 committed): its
     snapshot read is the version (30,40). *)
  let v = view_at 35 in
  match Chain.find_visible chain v with
  | Some (node, hops) ->
      check_int "version (30,40)" 30 node.Chain.version.Version.vs;
      check_bool "hops counted" true (hops >= 0)
  | None -> Alcotest.fail "expected a visible version"

let test_chain_trim_at_tail () =
  let chain, nodes = build_chain 4 in
  (* Deleting the oldest node trims; no hole. *)
  Chain.delete_node chain (List.nth nodes 0);
  check_int "live 3" 3 (Chain.live_length chain);
  check_int "no holes" 0 (Chain.holes chain);
  check_bool "invariants" true (Chain.check_invariants chain = Ok ())

let test_chain_trim_at_head () =
  let chain, nodes = build_chain 4 in
  Chain.delete_node chain (List.nth nodes 3);
  check_int "live 3" 3 (Chain.live_length chain);
  check_int "no holes" 0 (Chain.holes chain);
  match Chain.head chain with
  | Some h -> check_int "new head" 30 h.Chain.version.Version.vs
  | None -> Alcotest.fail "head missing"

let test_chain_interior_hole () =
  let chain, nodes = build_chain 5 in
  (* Cut-I: one interior deletion -> tolerated hole. *)
  Chain.delete_node chain (List.nth nodes 2);
  check_int "one hole" 1 (Chain.holes chain);
  check_int "live 4" 4 (Chain.live_length chain);
  check_bool "invariants" true (Chain.check_invariants chain = Ok ());
  (* Versions on both sides remain reachable (Figure 8's example). *)
  check_bool "older side reachable" true (Chain.reachable chain (List.nth nodes 0));
  check_bool "newer side reachable" true (Chain.reachable chain (List.nth nodes 4));
  check_bool "deleted not reachable" false (Chain.reachable chain (List.nth nodes 2))

let test_chain_find_visible_across_hole () =
  let chain, nodes = build_chain 5 in
  Chain.delete_node chain (List.nth nodes 2);
  (* (10,20) is only reachable from the tail now. *)
  let old_reader = view_at 15 in
  (match Chain.find_visible chain old_reader with
  | Some (node, _) -> check_int "found oldest from tail" 10 node.Chain.version.Version.vs
  | None -> Alcotest.fail "old version must stay reachable");
  (* (40,50) from the head. *)
  let new_reader = view_at 45 in
  match Chain.find_visible chain new_reader with
  | Some (node, _) -> check_int "found newest from head" 40 node.Chain.version.Version.vs
  | None -> Alcotest.fail "new version must stay reachable"

let test_chain_second_hole_triggers_fixup () =
  let chain, nodes = build_chain 7 in
  Chain.delete_node chain (List.nth nodes 2);
  check_int "one hole tolerated" 1 (Chain.holes chain);
  check_int "no fixups yet" 0 (Chain.fixups chain);
  (* Cut-II: a second, non-adjacent interior deletion must trigger the
     preemptive Fixup and return to the 0-hole state. *)
  Chain.delete_node chain (List.nth nodes 4);
  check_int "fixed up" 0 (Chain.holes chain);
  check_int "one fixup" 1 (Chain.fixups chain);
  check_int "live 5" 5 (Chain.live_length chain);
  check_bool "invariants" true (Chain.check_invariants chain = Ok ());
  (* After fixup everything live is reachable again from the head. *)
  List.iteri
    (fun i node ->
      if i <> 2 && i <> 4 then
        check_bool (Printf.sprintf "node %d reachable" i) true (Chain.reachable chain node))
    nodes

let test_chain_adjacent_deletion_extends_hole () =
  let chain, nodes = build_chain 6 in
  Chain.delete_node chain (List.nth nodes 2);
  (* Deleting the neighbour extends the same run: still one hole. *)
  Chain.delete_node chain (List.nth nodes 3);
  check_int "still one hole" 1 (Chain.holes chain);
  check_int "no fixup needed" 0 (Chain.fixups chain);
  check_bool "invariants" true (Chain.check_invariants chain = Ok ())

let test_chain_delete_all () =
  let chain, nodes = build_chain 4 in
  List.iter (Chain.delete_node chain) nodes;
  check_int "empty" 0 (Chain.live_length chain);
  check_bool "no ends" true (Chain.head chain = None && Chain.tail chain = None);
  check_bool "invariants" true (Chain.check_invariants chain = Ok ())

let test_chain_delete_idempotent () =
  let chain, nodes = build_chain 3 in
  let n = List.nth nodes 1 in
  Chain.delete_node chain n;
  Chain.delete_node chain n;
  check_int "deleted once" 2 (Chain.live_length chain)

(* Property: under random deletion orders, invariants always hold and
   every live version stays reachable — the representation invariant of
   §3.4. *)
let qcheck_chain_random_cuts =
  QCheck.Test.make ~name:"representation invariant under random cuts" ~count:500
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(0 -- 30) (int_bound 19)))
    (fun (n, kill_order) ->
      let chain, nodes = build_chain n in
      let arr = Array.of_list nodes in
      List.iter (fun i -> if i < n then Chain.delete_node chain arr.(i)) kill_order;
      Chain.check_invariants chain = Ok ()
      && Array.for_all
           (fun node -> node.Chain.deleted || Chain.reachable chain node)
           arr)

let qcheck_chain_visibility_after_cuts =
  (* Whatever we cut, a version that is still the snapshot read of some
     view must be findable via the two-ended traversal. *)
  QCheck.Test.make ~name:"live snapshot reads stay findable" ~count:500
    QCheck.(triple (int_range 2 15) (list_of_size Gen.(0 -- 10) (int_bound 14)) (int_range 2 16))
    (fun (n, kill_order, reader_ts) ->
      let chain, nodes = build_chain n in
      let arr = Array.of_list nodes in
      List.iter (fun i -> if i < n then Chain.delete_node chain arr.(i)) kill_order;
      let view = view_at ((10 * reader_ts) + 5) in
      let wanted =
        Array.to_list arr
        |> List.find_opt (fun node ->
               (not node.Chain.deleted)
               && Read_view.snapshot_read view ~vs:node.Chain.version.Version.vs
                    ~ve:node.Chain.version.Version.ve)
      in
      match wanted with
      | None -> true
      | Some node -> (
          match Chain.find_visible chain view with
          | Some (found, _) -> found == node
          | None -> false))

(* -------------------------------------------------------------------- *)
(* Segment *)

let test_segment_fill_and_descriptor () =
  let chain = Chain.create 0 in
  let seg = Segment.create ~id:7 ~cls:Vclass.Hot ~cap_bytes:250 ~now:0 in
  check_bool "empty" true (Segment.is_empty seg);
  let n1 = Chain.push_newest chain (mk_version ~vs:3 ~ve:8 ()) ~seg_id:(-1) in
  Segment.add seg n1;
  check_int "locator updated" 7 n1.Chain.seg_id;
  let n2 = Chain.push_newest chain (mk_version ~vs:8 ~ve:12 ()) ~seg_id:(-1) in
  Segment.add seg n2;
  let id, vmin, vmax = Segment.descriptor seg in
  check_int "id" 7 id;
  check_int "vmin" 3 vmin;
  check_int "vmax" 12 vmax;
  check_bool "full for next 100" false (Segment.fits seg ~bytes:100);
  Alcotest.check_raises "overflow" (Invalid_argument "Segment.add: overflow") (fun () ->
      Segment.add seg (Chain.push_newest chain (mk_version ~vs:12 ~ve:13 ()) ~seg_id:(-1)))

let test_segment_compact () =
  let chain = Chain.create 0 in
  let seg = Segment.create ~id:0 ~cls:Vclass.Hot ~cap_bytes:1000 ~now:0 in
  let nodes =
    List.init 4 (fun i ->
        let n = Chain.push_newest chain (mk_version ~vs:(i + 1) ~ve:(i + 2) ()) ~seg_id:0 in
        Segment.add seg n;
        n)
  in
  Chain.delete_node chain (List.nth nodes 0);
  Chain.delete_node chain (List.nth nodes 3);
  Segment.compact seg;
  check_int "two survivors" 2 (Segment.version_count seg);
  check_int "bytes recomputed" 200 seg.Segment.used_bytes;
  let _, vmin, vmax = Segment.descriptor seg in
  check_int "vmin tightened" 2 vmin;
  check_int "vmax tightened" 4 vmax

let test_segment_lifecycle () =
  let chain = Chain.create 0 in
  let seg = Segment.create ~id:0 ~cls:Vclass.Llt ~cap_bytes:1000 ~now:50 in
  Segment.add seg (Chain.push_newest chain (mk_version ~vs:1 ~ve:2 ()) ~seg_id:0);
  check_bool "no delay before cut" true (Segment.cut_delay seg = None);
  Segment.harden seg ~now:100;
  check_bool "hardened" true (seg.Segment.state = Segment.Hardened);
  Alcotest.check_raises "double harden" (Invalid_argument "Segment.harden: segment not in buffer")
    (fun () -> Segment.harden seg ~now:200);
  Segment.mark_cut seg ~now:400;
  check_bool "cut delay" true (Segment.cut_delay seg = Some 300)

let test_segment_empty_descriptor () =
  let seg = Segment.create ~id:0 ~cls:Vclass.Cold ~cap_bytes:100 ~now:0 in
  Alcotest.check_raises "no descriptor when unfilled"
    (Invalid_argument "Segment.descriptor: empty segment") (fun () ->
      ignore (Segment.descriptor seg))

(* -------------------------------------------------------------------- *)
(* Classifier *)

let classifier = Classifier.create ~delta_hot:(Clock.ms 5) ~delta_llt:(Clock.seconds 1.) ()

let test_classifier_hot_cold () =
  let hot =
    Version.make ~rid:0 ~vs:1 ~ve:2 ~vs_time:0 ~ve_time:(Clock.ms 1) ~bytes:10 ~payload:0
  in
  let cold =
    Version.make ~rid:0 ~vs:1 ~ve:2 ~vs_time:0 ~ve_time:(Clock.ms 50) ~bytes:10 ~payload:0
  in
  check_bool "short interval is hot" true
    (Classifier.classify classifier ~llt_views:[] hot = Vclass.Hot);
  check_bool "long interval is cold" true
    (Classifier.classify classifier ~llt_views:[] cold = Vclass.Cold)

let test_classifier_llt_pinning () =
  (* An LLT that began at ts 5 pins the version (3, 8). *)
  let llt_view = Read_view.make ~creator:5 ~actives:[] ~high:5 in
  let pinned =
    Version.make ~rid:0 ~vs:3 ~ve:8 ~vs_time:0 ~ve_time:(Clock.ms 1) ~bytes:10 ~payload:0
  in
  let unpinned =
    Version.make ~rid:0 ~vs:6 ~ve:8 ~vs_time:0 ~ve_time:(Clock.ms 1) ~bytes:10 ~payload:0
  in
  check_bool "pinned goes to VC_llt" true
    (Classifier.classify classifier ~llt_views:[ llt_view ] pinned = Vclass.Llt);
  check_bool "unpinned stays hot" true
    (Classifier.classify classifier ~llt_views:[ llt_view ] unpinned = Vclass.Hot)

let test_classifier_vulnerability_window () =
  (* The same pinned version is misclassified when the LLT has not yet
     been identified (empty llt_views) — the vulnerability window. *)
  let pinned =
    Version.make ~rid:0 ~vs:3 ~ve:8 ~vs_time:0 ~ve_time:(Clock.ms 1) ~bytes:10 ~payload:0
  in
  check_bool "misclassified as hot" true
    (Classifier.classify classifier ~llt_views:[] pinned = Vclass.Hot)

let test_classifier_delta_of_avg () =
  check_int "multiple of avg" (Clock.ms 100)
    (Classifier.delta_llt_of_avg ~multiple:10 ~avg_txn:(Clock.ms 10));
  check_int "floored" (Clock.ms 1) (Classifier.delta_llt_of_avg ~multiple:10 ~avg_txn:0)

let test_vclass_indexing () =
  List.iter
    (fun cls -> check_bool "roundtrip" true (Vclass.of_index (Vclass.to_index cls) = cls))
    Vclass.all;
  check_int "count" (List.length Vclass.all) Vclass.count

let suites =
  [
    ("version.version", [ Alcotest.test_case "basics" `Quick test_version_basics ]);
    ( "version.chain",
      [
        Alcotest.test_case "push and ends" `Quick test_chain_push_and_ends;
        Alcotest.test_case "out-of-order rejected" `Quick test_chain_out_of_order_rejected;
        Alcotest.test_case "find_visible" `Quick test_chain_find_visible;
        Alcotest.test_case "trim at tail" `Quick test_chain_trim_at_tail;
        Alcotest.test_case "trim at head" `Quick test_chain_trim_at_head;
        Alcotest.test_case "interior hole tolerated" `Quick test_chain_interior_hole;
        Alcotest.test_case "two-ended traversal" `Quick test_chain_find_visible_across_hole;
        Alcotest.test_case "Cut-II triggers fixup" `Quick test_chain_second_hole_triggers_fixup;
        Alcotest.test_case "adjacent deletes share hole" `Quick test_chain_adjacent_deletion_extends_hole;
        Alcotest.test_case "delete all" `Quick test_chain_delete_all;
        Alcotest.test_case "idempotent delete" `Quick test_chain_delete_idempotent;
        QCheck_alcotest.to_alcotest qcheck_chain_random_cuts;
        QCheck_alcotest.to_alcotest qcheck_chain_visibility_after_cuts;
      ] );
    ( "version.segment",
      [
        Alcotest.test_case "fill and descriptor" `Quick test_segment_fill_and_descriptor;
        Alcotest.test_case "compact" `Quick test_segment_compact;
        Alcotest.test_case "lifecycle and cut delay" `Quick test_segment_lifecycle;
        Alcotest.test_case "empty descriptor" `Quick test_segment_empty_descriptor;
      ] );
    ( "version.classifier",
      [
        Alcotest.test_case "hot/cold split" `Quick test_classifier_hot_cold;
        Alcotest.test_case "LLT pinning" `Quick test_classifier_llt_pinning;
        Alcotest.test_case "vulnerability window" `Quick test_classifier_vulnerability_window;
        Alcotest.test_case "delta from avg txn" `Quick test_classifier_delta_of_avg;
        Alcotest.test_case "class indexing" `Quick test_vclass_indexing;
      ] );
  ]
