(* Odds and ends: validation paths, edge geometries, and cross-module
   behaviours not covered by the main suites. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Schema *)

let test_schema_validation () =
  let s = Schema.default in
  check_int "records" 48_000 (Schema.records s);
  check_int "rid layout" 1_001 (Schema.rid s ~table:1 ~row:1);
  check_bool "valid" true (Schema.valid_rid s 0);
  check_bool "invalid" false (Schema.valid_rid s (Schema.records s));
  Alcotest.check_raises "bad table" (Invalid_argument "Schema.rid") (fun () ->
      ignore (Schema.rid s ~table:48 ~row:0))

(* -------------------------------------------------------------------- *)
(* Heap construction validation *)

let test_heap_validation () =
  let wal = Wal.create () in
  Alcotest.check_raises "slot too big" (Invalid_argument "Heap.create: bad slot size")
    (fun () ->
      ignore (Heap.create ~page_bytes:100 ~slot_bytes:200 ~records:1 ~fill_factor:0.5 ~wal));
  Alcotest.check_raises "fill factor" (Invalid_argument "Heap.create: bad fill factor")
    (fun () ->
      ignore (Heap.create ~page_bytes:100 ~slot_bytes:10 ~records:1 ~fill_factor:1.5 ~wal))

let test_heap_one_record_per_page () =
  (* Slot nearly fills the page: each record gets its own page, and a
     single-record page never splits (keep = 0 guard). *)
  let wal = Wal.create () in
  let h = Heap.create ~page_bytes:1000 ~slot_bytes:900 ~records:3 ~fill_factor:1.0 ~wal in
  check_int "one page each" 3 (Heap.page_count h);
  (* Overflow it: no split possible, page just grows. *)
  check_bool "no split possible" true (Heap.add_version_bytes h ~rid:0 ~bytes:500 = `Fits);
  check_int "still 3 pages" 3 (Heap.page_count h)

(* -------------------------------------------------------------------- *)
(* Siro edge: visibility with an in-flight creator *)

let test_siro_uncommitted_current_invisible () =
  let slot = Siro.create ~rid:0 ~bytes:64 ~payload:5 ~vs:0 ~vs_time:0 in
  ignore (Siro.update slot ~vs:10 ~vs_time:100 ~payload:6 ~bytes:64);
  (* A reader whose view lists creator 10 as active must read the old
     version even though the slot's current is newer. *)
  let view = Read_view.make ~creator:12 ~actives:[ 10 ] ~high:12 in
  (match Siro.read_inrow slot view with
  | Some v -> check_int "reads predecessor" 5 v.Version.payload
  | None -> Alcotest.fail "predecessor expected");
  (* The creator itself reads its own write. *)
  let own = Read_view.make ~creator:10 ~actives:[] ~high:10 in
  match Siro.read_inrow slot own with
  | Some v -> check_int "own write" 6 v.Version.payload
  | None -> Alcotest.fail "own write expected"

(* -------------------------------------------------------------------- *)
(* Access / workload edges *)

let test_access_single_row () =
  let schema = { Schema.default with Schema.tables = 3; rows_per_table = 1 } in
  let rng = Rng.create 5 in
  let a = Access.create schema (Access.Zipfian 1.1) in
  for _ = 1 to 100 do
    let rid = Access.sample a rng in
    check_int "always row 0" 0 (rid mod schema.Schema.rows_per_table)
  done

let test_runner_latency_histogram () =
  let cfg =
    {
      Exp_config.default with
      Exp_config.duration_s = 0.3;
      workers = 2;
      schema = { Schema.default with Schema.tables = 1; rows_per_table = 20 };
    }
  in
  let r = Runner.run ~engine:(fun s -> Siro_engine.create ~flavor:`Mysql s) cfg in
  check_bool "latencies recorded" true (Histogram.total r.Runner.latency_us = r.Runner.commits);
  check_bool "p99 sane" true (Histogram.percentile r.Runner.latency_us 0.99 < 100_000)

(* -------------------------------------------------------------------- *)
(* Recovery-time ordering across engines *)

let test_recovery_time_ordering () =
  let schema = { Schema.default with Schema.tables = 1; rows_per_table = 64 } in
  let crash_time make =
    let eng : Engine.t = make schema in
    let now = ref 0 in
    let tick () = now := !now + Clock.us 100; !now in
    (* Committed history pinned by a reader, then one loser. *)
    let pin, _ = eng.Engine.begin_txn ~now:(tick ()) in
    ignore pin;
    for i = 1 to 500 do
      let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
      (match eng.Engine.write txn ~rid:(i mod 64) ~payload:i ~now:(tick ()) with
      | Engine.Committed_path _ | Engine.Conflict _ -> ());
      ignore (eng.Engine.commit txn ~now:(tick ()))
    done;
    let loser, _ = eng.Engine.begin_txn ~now:(tick ()) in
    (match eng.Engine.write loser ~rid:0 ~payload:(-1) ~now:(tick ()) with
    | Engine.Committed_path _ | Engine.Conflict _ -> ());
    eng.Engine.crash ()
  in
  let t_mysql = crash_time (fun s -> Offrow_engine.create s) in
  let t_siro = crash_time (fun s -> Siro_engine.create ~flavor:`Mysql s) in
  check_bool "SIRO recovery is near-instant vs undo-header scan" true (t_siro * 10 < t_mysql)

(* -------------------------------------------------------------------- *)
(* Costs / table helpers *)

let test_costs_positive () =
  let c = Costs.default in
  check_bool "all durations positive" true
    (List.for_all
       (fun x -> x > 0)
       [
         c.Costs.txn_begin; c.Costs.txn_commit; c.Costs.read_base; c.Costs.write_base;
         c.Costs.version_hop; c.Costs.io_latency; c.Costs.page_split; c.Costs.undo_header;
         c.Costs.llb_lookup; c.Costs.segment_append; c.Costs.zone_check; c.Costs.gc_page_scan;
         c.Costs.think;
       ])

let test_table_formatting () =
  check_bool "bytes" true (Table.fmt_bytes 512 = "512 B");
  check_bool "kib" true (Table.fmt_bytes 2048 = "2.0 KiB");
  check_bool "mib" true (Table.fmt_bytes (3 * 1024 * 1024) = "3.0 MiB");
  check_bool "float" true (Table.fmt_f ~decimals:2 1.005 = "1.00" || Table.fmt_f ~decimals:2 1.005 = "1.01")

let suites =
  [
    ( "more.edges",
      [
        Alcotest.test_case "schema validation" `Quick test_schema_validation;
        Alcotest.test_case "heap validation" `Quick test_heap_validation;
        Alcotest.test_case "single-record pages" `Quick test_heap_one_record_per_page;
        Alcotest.test_case "siro in-flight visibility" `Quick test_siro_uncommitted_current_invisible;
        Alcotest.test_case "single-row zipf" `Quick test_access_single_row;
        Alcotest.test_case "latency histogram" `Quick test_runner_latency_histogram;
        Alcotest.test_case "recovery ordering" `Quick test_recovery_time_ordering;
        Alcotest.test_case "cost model sanity" `Quick test_costs_positive;
        Alcotest.test_case "table formatting" `Quick test_table_formatting;
      ] );
  ]
