(* Tests for the vdriver core: SIRO slots, the collaborative cleaning
   protocol (including a real multi-domain race), vSorter, vCutter and
   the Driver facade end-to-end against a live transaction manager. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------------------------------------------------------- *)
(* Siro *)

let test_siro_first_updates () =
  let slot = Siro.create ~rid:7 ~bytes:100 ~payload:0 ~vs:1 ~vs_time:0 in
  check_bool "toggle initial" false (Siro.toggle slot);
  (* First update: placeholder was empty, nothing relocates. *)
  let r1 = Siro.update slot ~vs:5 ~vs_time:1000 ~payload:50 ~bytes:100 in
  check_bool "no relocation" true (r1.Siro.relocated = None);
  check_bool "toggled" true (Siro.toggle slot);
  check_int "current payload" 50 (Siro.current slot).Version.payload;
  (match Siro.previous slot with
  | Some p ->
      check_int "prev closed at 5" 5 p.Version.ve;
      check_int "prev payload" 0 p.Version.payload
  | None -> Alcotest.fail "placeholder must hold old version");
  (* Second update displaces the in-row old version. *)
  let r2 = Siro.update slot ~vs:9 ~vs_time:2000 ~payload:90 ~bytes:100 in
  match r2.Siro.relocated with
  | Some v ->
      check_int "relocated vs" 1 v.Version.vs;
      check_int "relocated ve" 5 v.Version.ve
  | None -> Alcotest.fail "expected relocation"

let test_siro_same_txn_overwrite () =
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:0 ~vs:1 ~vs_time:0 in
  ignore (Siro.update slot ~vs:5 ~vs_time:100 ~payload:1 ~bytes:100);
  let toggle_before = Siro.toggle slot in
  let r = Siro.update slot ~vs:5 ~vs_time:150 ~payload:2 ~bytes:100 in
  check_bool "in-place, nothing relocated" true (r.Siro.relocated = None);
  check_bool "toggle unchanged" true (Siro.toggle slot = toggle_before);
  check_int "final payload" 2 (Siro.current slot).Version.payload;
  (match Siro.previous slot with
  | Some p -> check_int "prev still the committed one" 0 p.Version.payload
  | None -> Alcotest.fail "placeholder lost");
  Alcotest.check_raises "older writer rejected"
    (Invalid_argument "Siro.update: non-monotone writer") (fun () ->
      ignore (Siro.update slot ~vs:3 ~vs_time:200 ~payload:9 ~bytes:100))

let test_siro_abort_toggles_back () =
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:10 ~vs:1 ~vs_time:0 in
  ignore (Siro.update slot ~vs:5 ~vs_time:100 ~payload:20 ~bytes:100);
  let toggle_after_commit_path = Siro.toggle slot in
  ignore (Siro.update slot ~vs:9 ~vs_time:200 ~payload:30 ~bytes:100);
  (* T9 aborts: v(5) must become current again, placeholder empty. *)
  Siro.abort_undo slot ~t_aborted:9;
  check_int "restored payload" 20 (Siro.current slot).Version.payload;
  check_int "visibility reopened" Timestamp.infinity (Siro.current slot).Version.ve;
  check_bool "placeholder empty" true (Siro.previous slot = None);
  check_bool "toggle flipped back" true (Siro.toggle slot = toggle_after_commit_path);
  (* Aborting a transaction that is not the current writer is a no-op. *)
  Siro.abort_undo slot ~t_aborted:999;
  check_int "still restored" 20 (Siro.current slot).Version.payload

let test_siro_read_inrow () =
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:10 ~vs:2 ~vs_time:0 in
  ignore (Siro.update slot ~vs:6 ~vs_time:100 ~payload:60 ~bytes:100);
  (* Reader that began at 4: sees creator 2 only -> in-row old version. *)
  let old_view = Read_view.make ~creator:4 ~actives:[] ~high:4 in
  (match Siro.read_inrow slot old_view with
  | Some v -> check_int "old version payload" 10 v.Version.payload
  | None -> Alcotest.fail "old in-row version expected");
  (* Reader that began at 8: sees creator 6 -> current. *)
  let new_view = Read_view.make ~creator:8 ~actives:[] ~high:8 in
  (match Siro.read_inrow slot new_view with
  | Some v -> check_int "current payload" 60 v.Version.payload
  | None -> Alcotest.fail "current version expected");
  (* Reader older than both in-row versions misses (goes off-row). *)
  let ancient_view = Read_view.make ~creator:1 ~actives:[] ~high:1 in
  check_bool "ancient reader misses in-row" true (Siro.read_inrow slot ancient_view = None);
  check_int "fixed footprint" 200 (Siro.inrow_bytes slot)

(* -------------------------------------------------------------------- *)
(* Collab protocol *)

let test_collab_sorter_wins_uncontended () =
  let c = Collab.create () in
  let deleted = ref 0 and inserted = ref 0 in
  let outcome =
    Collab.sorter c ~delete:(fun () -> incr deleted) ~insert:(fun () -> incr inserted)
  in
  check_bool "did both" true (outcome = `Did_both);
  check_int "deleted once" 1 !deleted;
  check_int "inserted once" 1 !inserted

let test_collab_cutter_wins_uncontended () =
  let c = Collab.create () in
  let deleted = ref 0 and fixed = ref 0 in
  let outcome = Collab.cutter c ~delete:(fun () -> incr deleted) ~fixup:(fun () -> incr fixed) in
  check_bool "won" true (outcome = `Won);
  check_int "deleted once" 1 !deleted;
  check_int "fixup ran" 1 !fixed

let test_collab_one_shot () =
  (* The episode is one-shot: once the sorter won and deleted the dead
     version, a late cutter must lose — otherwise the version would be
     deleted twice. *)
  let c = Collab.create () in
  let deleted = ref 0 in
  ignore (Collab.sorter c ~delete:(fun () -> incr deleted) ~insert:(fun () -> ()));
  let outcome = Collab.cutter c ~delete:(fun () -> incr deleted) ~fixup:(fun () -> ()) in
  check_bool "late cutter loses" true (outcome = `Lost);
  check_int "deleted exactly once" 1 !deleted;
  (* Symmetric: after a cutter win, a late sorter only inserts. *)
  let c2 = Collab.create () in
  let deleted2 = ref 0 and inserted2 = ref 0 in
  ignore (Collab.cutter c2 ~delete:(fun () -> incr deleted2) ~fixup:(fun () -> ()));
  let o2 = Collab.sorter c2 ~delete:(fun () -> incr deleted2) ~insert:(fun () -> incr inserted2) in
  check_bool "late sorter defers" true (o2 = `Inserted_after_cutter);
  check_int "deleted once by cutter" 1 !deleted2;
  check_int "insertion still applied" 1 !inserted2

let test_collab_domains_race () =
  (* Hammer the protocol with a real cutter domain racing a real sorter
     domain on many episodes. The invariant: per episode, the dead
     version is deleted exactly once, and the insertion happens exactly
     once, always after the deletion. *)
  let episodes = 500 in
  let violations = Atomic.make 0 in
  let sorter_waits = ref 0 in
  for _ = 1 to episodes do
    let c = Collab.create () in
    let deletes = Atomic.make 0 in
    let inserted_after_delete = Atomic.make false in
    let barrier = Atomic.make 0 in
    let spawn f =
      Domain.spawn (fun () ->
          Atomic.incr barrier;
          while Atomic.get barrier < 2 do
            Domain.cpu_relax ()
          done;
          f ())
    in
    let d1 =
      spawn (fun () ->
          ignore
            (Collab.sorter c
               ~delete:(fun () -> Atomic.incr deletes)
               ~insert:(fun () -> Atomic.set inserted_after_delete (Atomic.get deletes = 1))))
    in
    let d2 =
      spawn (fun () ->
          ignore
            (Collab.cutter c ~delete:(fun () -> Atomic.incr deletes) ~fixup:(fun () -> ())))
    in
    Domain.join d1;
    Domain.join d2;
    if Atomic.get deletes <> 1 || not (Atomic.get inserted_after_delete) then
      Atomic.incr violations;
    sorter_waits := !sorter_waits + Collab.races_lost_by_sorter c
  done;
  check_int "no invariant violations" 0 (Atomic.get violations)

(* -------------------------------------------------------------------- *)
(* Driver integration *)

(* A config with always-fresh zones and tiny segments so unit scenarios
   exercise sealing/hardening quickly. *)
let test_config ?(segment_bytes = 300) ?(vbuffer_bytes = 8 * 1024 * 1024)
    ?(delta_llt = Clock.ms 10) () =
  {
    State.default_config with
    State.segment_bytes;
    vbuffer_bytes;
    classifier = Classifier.create ~delta_hot:(Clock.ms 5) ~delta_llt ();
    zone_refresh_period = 0;
  }

(* Run one committed update against a SIRO slot, feeding any displaced
   version to the driver. Returns the updater's tid. *)
let committed_update mgr driver slot ~now ~payload =
  let t = Txn_manager.begin_txn mgr ~now in
  let r =
    Siro.update slot ~vs:t.Txn.tid ~vs_time:now ~payload ~bytes:100
  in
  (match r.Siro.relocated with
  | Some v -> ignore (Driver.relocate driver v ~now)
  | None -> ());
  Txn_manager.commit mgr t ~now:(now + Clock.us 20);
  t.Txn.tid

let test_driver_prunes_without_readers () =
  let mgr = Txn_manager.create () in
  let driver = Driver.create ~config:(test_config ()) mgr in
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  for i = 1 to 20 do
    ignore (committed_update mgr driver slot ~now:(i * Clock.ms 1) ~payload:i)
  done;
  let stats = Driver.stats driver in
  (* No concurrent readers: every displaced version is dead on arrival
     (1st prune), so no space is consumed and no chain forms. *)
  check_int "19 relocations" 19 (Prune_stats.relocated stats);
  check_int "all pruned first" 19 (Prune_stats.prune1_total stats);
  check_int "nothing stored" 0 (Prune_stats.stored_total stats);
  check_int "no space" 0 (Driver.space_bytes driver);
  check_int "no chains" 0 (Driver.max_chain_length driver)

let test_driver_llt_pins_versions () =
  let mgr = Txn_manager.create () in
  let driver = Driver.create ~config:(test_config ()) mgr in
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  (* u1 then the LLT begins, then updates continue past delta_llt. *)
  ignore (committed_update mgr driver slot ~now:(Clock.ms 1) ~payload:1);
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 2) in
  ignore (committed_update mgr driver slot ~now:(Clock.ms 20) ~payload:2);
  ignore (committed_update mgr driver slot ~now:(Clock.ms 21) ~payload:3);
  (* The version pinned by the LLT (spanning its begin ts) relocated at
     ms 21, when the LLT was 19 ms old > delta_llt=10ms: classified
     VC_llt and kept. *)
  let stats = Driver.stats driver in
  check_int "one version kept for the LLT" 1 (Prune_stats.relocated stats - Prune_stats.prune1_total stats);
  check_bool "it sits in the LLT class buffer" true (Driver.space_bytes driver > 0);
  (* The LLT reads its snapshot through the driver. *)
  (match Driver.read driver llt.Txn.view ~rid:0 with
  | Some (v, Driver.From_vbuffer, _) -> check_int "payload of pinned version" 1 v.Version.payload
  | Some _ -> Alcotest.fail "expected vbuffer hit"
  | None -> Alcotest.fail "LLT snapshot must be reachable");
  (* Later relocations (not pinned) keep dying in the 1st prune even
     while the LLT lives — the paper's core claim. *)
  for i = 4 to 13 do
    ignore (committed_update mgr driver slot ~now:(Clock.ms (20 + i)) ~payload:i)
  done;
  let p1_before = Prune_stats.prune1_total stats in
  check_bool "pruning continued under LLT" true (p1_before >= 10);
  check_int "still just one survivor" 1
    (Prune_stats.relocated stats - Prune_stats.prune1_total stats);
  Txn_manager.commit mgr llt ~now:(Clock.ms 40)

let test_driver_vcutter_reclaims_after_llt () =
  let mgr = Txn_manager.create () in
  (* Segment of 300 bytes = 3 versions of 100; a tiny vBuffer budget so
     the sweep flushes sealed segments to the store immediately. *)
  let driver = Driver.create ~config:(test_config ~vbuffer_bytes:100 ()) mgr in
  let slots =
    Array.init 4 (fun rid -> Siro.create ~rid ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0)
  in
  (* Prime every record with one committed update, then start the LLT. *)
  Array.iteri
    (fun i _slot -> ignore (committed_update mgr driver slots.(i) ~now:(Clock.ms (1 + i)) ~payload:10))
    slots;
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 5) in
  (* Two updates per record after the LLT aged past delta_llt: the
     version spanning the LLT's begin relocates and is pinned. *)
  Array.iteri
    (fun i _slot ->
      ignore (committed_update mgr driver slots.(i) ~now:(Clock.ms (20 + i)) ~payload:20);
      ignore (committed_update mgr driver slots.(i) ~now:(Clock.ms (30 + i)) ~payload:30))
    slots;
  let stats = Driver.stats driver in
  check_int "four pinned versions" 4 (Prune_stats.relocated stats - Prune_stats.prune1_total stats);
  (* 3 of them filled a 300-byte LLT segment, which sealed; the sweep
     cannot drop it (pinned) and flushes it under memory pressure. *)
  let swept = Driver.sweep driver ~now:(Clock.ms 35) in
  check_int "nothing 2nd-pruned while pinned" 0 swept.Vsorter.versions_pruned;
  check_bool "one segment hardened under pressure" true
    (Version_store.hardened_count (Driver.store driver) >= 1);
  (* While the LLT lives, vCutter cannot cut the hardened LLT segment. *)
  let r = Driver.vcutter_step driver ~now:(Clock.ms 40) ~max_segments:10 in
  check_int "nothing cut under LLT" 0 r.Vcutter.segments_cut;
  (* LLT commits: the pinned versions die; the hardened segment's
     [vmin,vmax] now sits inside a dead zone. *)
  Txn_manager.commit mgr llt ~now:(Clock.ms 50);
  let r2 = Driver.vcutter_step driver ~now:(Clock.ms 60) ~max_segments:10 in
  check_bool "segment cut after LLT end" true (r2.Vcutter.segments_cut >= 1);
  check_bool "versions removed" true (r2.Vcutter.versions_cut >= 3);
  check_int "store emptied" 0 (Version_store.live_bytes (Driver.store driver));
  (* Cut delay was recorded for the LLT-class segment. *)
  (match Version_store.cut_delays (Driver.store driver) with
  | (cls, delay) :: _ ->
      check_bool "llt class" true (cls = Vclass.Llt);
      check_bool "positive delay" true (delay > 0)
  | [] -> Alcotest.fail "expected a recorded cut delay")

let test_driver_flush_all_settles_stats () =
  let mgr = Txn_manager.create () in
  let driver = Driver.create ~config:(test_config ()) mgr in
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  ignore (committed_update mgr driver slot ~now:(Clock.ms 1) ~payload:1);
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 2) in
  ignore (committed_update mgr driver slot ~now:(Clock.ms 20) ~payload:2);
  ignore (committed_update mgr driver slot ~now:(Clock.ms 21) ~payload:3);
  let stats = Driver.stats driver in
  let before = Prune_stats.stored_total stats in
  check_int "pinned version still buffered" 0 before;
  let r = Driver.flush_all driver ~now:(Clock.ms 30) in
  check_int "one stored by flush" 1 r.Vsorter.versions_stored;
  check_int "stats settled" 1 (Prune_stats.stored_total stats);
  Txn_manager.commit mgr llt ~now:(Clock.ms 40)

let test_driver_crash_restart () =
  let mgr = Txn_manager.create () in
  let driver = Driver.create ~config:(test_config ()) mgr in
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  ignore (committed_update mgr driver slot ~now:(Clock.ms 1) ~payload:1);
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 2) in
  for i = 2 to 12 do
    ignore (committed_update mgr driver slot ~now:(Clock.ms (i * 10)) ~payload:i)
  done;
  check_bool "space consumed before crash" true (Driver.space_bytes driver > 0);
  Driver.crash_restart driver;
  check_int "space emptied" 0 (Driver.space_bytes driver);
  check_int "llb emptied" 0 (Driver.max_chain_length driver);
  check_bool "no visible off-row versions" true (Driver.read driver llt.Txn.view ~rid:0 = None);
  Txn_manager.commit mgr llt ~now:(Clock.seconds 1.)

let test_driver_read_sources () =
  let mgr = Txn_manager.create () in
  (* Cache of a single segment: reading two hardened segments alternately
     must produce I/O misses. *)
  let config =
    { (test_config ~segment_bytes:200 ()) with State.store_cache_segments = 1 }
  in
  let driver = Driver.create ~config mgr in
  let slots =
    Array.init 4 (fun rid -> Siro.create ~rid ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0)
  in
  Array.iteri
    (fun i _slot -> ignore (committed_update mgr driver slots.(i) ~now:(Clock.ms (1 + i)) ~payload:10))
    slots;
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 5) in
  Array.iteri
    (fun i _slot ->
      ignore (committed_update mgr driver slots.(i) ~now:(Clock.ms (20 + i)) ~payload:20);
      ignore (committed_update mgr driver slots.(i) ~now:(Clock.ms (30 + i)) ~payload:30))
    slots;
  (* 4 pinned versions in 200-byte (2-version) segments; flush to
     harden the still-open second one. *)
  ignore (Driver.flush_all driver ~now:(Clock.ms 40));
  check_int "two segments hardened" 2 (Version_store.hardened_count (Driver.store driver));
  let read rid =
    match Driver.read driver llt.Txn.view ~rid with
    | Some (_, src, _) -> src
    | None -> Alcotest.fail "must be readable"
  in
  (* First touch of a hardened segment misses; re-touch hits; touching
     the other segment evicts (capacity 1). *)
  check_bool "first read IO" true (read 0 = Driver.From_store_io);
  check_bool "second read cached" true (read 1 = Driver.From_store_cached);
  check_bool "other segment IO" true (read 2 = Driver.From_store_io);
  check_bool "first evicted" true (read 0 = Driver.From_store_io);
  Txn_manager.commit mgr llt ~now:(Clock.ms 100)

let suites =
  [
    ( "core.siro",
      [
        Alcotest.test_case "update and relocation" `Quick test_siro_first_updates;
        Alcotest.test_case "same-txn overwrite" `Quick test_siro_same_txn_overwrite;
        Alcotest.test_case "abort toggles back" `Quick test_siro_abort_toggles_back;
        Alcotest.test_case "in-row reads" `Quick test_siro_read_inrow;
      ] );
    ( "core.collab",
      [
        Alcotest.test_case "sorter uncontended" `Quick test_collab_sorter_wins_uncontended;
        Alcotest.test_case "cutter uncontended" `Quick test_collab_cutter_wins_uncontended;
        Alcotest.test_case "one-shot episodes" `Quick test_collab_one_shot;
        Alcotest.test_case "multi-domain race" `Slow test_collab_domains_race;
      ] );
    ( "core.driver",
      [
        Alcotest.test_case "prunes without readers" `Quick test_driver_prunes_without_readers;
        Alcotest.test_case "LLT pins exactly its snapshot" `Quick test_driver_llt_pins_versions;
        Alcotest.test_case "vcutter reclaims after LLT" `Quick test_driver_vcutter_reclaims_after_llt;
        Alcotest.test_case "flush_all settles stats" `Quick test_driver_flush_all_settles_stats;
        Alcotest.test_case "crash restart empties" `Quick test_driver_crash_restart;
        Alcotest.test_case "read sources" `Quick test_driver_read_sources;
      ] );
  ]
