(* Second core-suite: the seal/sweep/flush pipeline, the ablation knobs,
   commit-interval translation plumbing, LLB and version-store
   accounting. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config ?(segment_bytes = 300) ?(vbuffer_bytes = 8 * 1024 * 1024)
    ?(classification = `Three_way) ?(pruning = `Dead_zones) () =
  {
    State.default_config with
    State.segment_bytes;
    vbuffer_bytes;
    classification;
    pruning;
    classifier = Classifier.create ~delta_hot:(Clock.ms 5) ~delta_llt:(Clock.ms 10) ();
    zone_refresh_period = 0;
  }

let committed_update mgr driver slot ~now ~payload =
  let t = Txn_manager.begin_txn mgr ~now in
  let r = Siro.update slot ~vs:t.Txn.tid ~vs_time:now ~payload ~bytes:100 in
  (match r.Siro.relocated with
  | Some v -> ignore (Driver.relocate driver v ~now)
  | None -> ());
  Txn_manager.commit mgr t ~now:(now + Clock.us 20);
  t.Txn.tid

(* Build a driver with an LLT pinning one version per record, plus one
   post-LLT dead version per record (it lived and died entirely after
   the LLT began — reclaimable by Theorem 3.5, pinned forever by the
   classic criterion). Per record, three relocations happen: the
   pre-LLT version (dead under both policies), the pinned one, and the
   post-LLT dead one. *)
let pinned_setup ?classification ?pruning ?vbuffer_bytes ?(records = 4) () =
  let mgr = Txn_manager.create () in
  let driver =
    Driver.create ~config:(config ?classification ?pruning ?vbuffer_bytes ()) mgr
  in
  let slots =
    Array.init records (fun rid -> Siro.create ~rid ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0)
  in
  Array.iteri
    (fun i slot -> ignore (committed_update mgr driver slot ~now:(Clock.ms (1 + i)) ~payload:1))
    slots;
  let llt = Txn_manager.begin_txn mgr ~now:(Clock.ms 5) in
  Array.iteri
    (fun i slot ->
      ignore (committed_update mgr driver slot ~now:(Clock.ms (20 + i)) ~payload:2);
      ignore (committed_update mgr driver slot ~now:(Clock.ms (30 + i)) ~payload:3);
      ignore (committed_update mgr driver slot ~now:(Clock.ms (40 + i)) ~payload:4))
    slots;
  (mgr, driver, llt)

(* -------------------------------------------------------------------- *)
(* Sweep pipeline *)

let test_sweep_drops_dead_sealed () =
  let mgr = Txn_manager.create () in
  (* Keep a reader alive so relocations survive the 1st prune and reach
     a segment; kill it before the sweep. *)
  let driver = Driver.create ~config:(config ()) mgr in
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  ignore (committed_update mgr driver slot ~now:(Clock.ms 1) ~payload:1);
  let reader = Txn_manager.begin_txn mgr ~now:(Clock.ms 2) in
  for i = 2 to 8 do
    ignore (committed_update mgr driver slot ~now:(Clock.ms (10 * i)) ~payload:i)
  done;
  check_bool "versions buffered while reader lives" true (Driver.space_bytes driver > 0);
  Txn_manager.commit mgr reader ~now:(Clock.ms 100);
  (* Seal the open segments so the sweep can examine them. *)
  let r = Driver.flush_all driver ~now:(Clock.ms 110) in
  check_bool "segments dropped wholesale" true (r.Vsorter.segments_dropped >= 1);
  check_bool "2nd prune counted" true (r.Vsorter.versions_pruned >= 1);
  check_int "nothing needed storage" 0 r.Vsorter.versions_stored;
  check_int "space reclaimed" 0 (Driver.space_bytes driver)

let test_sweep_flushes_on_pressure () =
  (* Four records pinned by a live LLT fill and seal a 300-byte
     segment; with a 100-byte budget the sweep cannot drop it (pinned)
     and must harden it. *)
  let _, driver, llt = pinned_setup ~vbuffer_bytes:100 () in
  let r = Driver.sweep driver ~now:(Clock.ms 60) in
  check_bool "flushed under pressure" true (r.Vsorter.segments_flushed >= 1);
  check_bool "stored counted" true (r.Vsorter.versions_stored >= 1);
  check_bool "store holds bytes" true (Version_store.live_bytes (Driver.store driver) > 0);
  check_bool "llt still live" true (Txn.is_active llt)

let test_sealed_segments_remain_readable () =
  let mgr = Txn_manager.create () in
  let driver = Driver.create ~config:(config ~segment_bytes:200 ()) mgr in
  let slot = Siro.create ~rid:0 ~bytes:100 ~payload:0 ~vs:0 ~vs_time:0 in
  ignore (committed_update mgr driver slot ~now:(Clock.ms 1) ~payload:1);
  let reader = Txn_manager.begin_txn mgr ~now:(Clock.ms 2) in
  for i = 2 to 6 do
    ignore (committed_update mgr driver slot ~now:(Clock.ms (20 * i)) ~payload:i)
  done;
  (* The reader's snapshot (payload 1) relocated into a now-sealed
     segment; it must still be served from the version buffer. *)
  match Driver.read driver reader.Txn.view ~rid:0 with
  | Some (v, Driver.From_vbuffer, _) -> check_int "payload" 1 v.Version.payload
  | Some _ -> Alcotest.fail "expected vbuffer read"
  | None -> Alcotest.fail "snapshot must stay reachable"

(* -------------------------------------------------------------------- *)
(* Ablations *)

let test_ablation_single_class () =
  let _, driver, llt = pinned_setup ~classification:`Single_class () in
  let stats = Driver.stats driver in
  (* Everything goes to the HOT cluster, pinned versions included. *)
  check_int "no LLT-class versions" 0
    (Prune_stats.prune1 stats Vclass.Llt
    + Prune_stats.prune2 stats Vclass.Llt
    + Prune_stats.stored stats Vclass.Llt);
  check_bool "pinned versions buffered as HOT" true (Driver.space_bytes driver > 0);
  ignore llt

let test_ablation_oldest_active_suspends_pruning () =
  let _, driver, _llt = pinned_setup ~pruning:`Oldest_active () in
  let stats = Driver.stats driver in
  (* The classic criterion reclaims only below the LLT: the pre-LLT
     version of each record (4 total). Everything younger accumulates,
     dead or not. *)
  check_int "only pre-LLT versions pruned" 4 (Prune_stats.prune1_total stats);
  check_int "pinned AND dead-after-LLT both stuck" 8 (Prune_stats.in_flight stats)

let test_ablation_dead_zones_prune_past_llt () =
  let _, driver, _llt = pinned_setup () in
  let stats = Driver.stats driver in
  (* Theorem 3.5 also reclaims versions born and dead after the LLT
     began (the post-LLT dead one per record): only the pinned version
     of each record survives. *)
  check_int "one survivor per record" 4 (Prune_stats.in_flight stats);
  check_int "pre- and post-LLT versions pruned" 8 (Prune_stats.prune1_total stats)

(* -------------------------------------------------------------------- *)
(* Zone_set.oldest_boundary, commit_interval *)

let test_oldest_boundary () =
  check_int "with live txns" 3 (Zone_set.oldest_boundary (Zone_set.make ~live:[ 7; 3 ] ~now_ts:10));
  check_int "empty falls back to now" 10 (Zone_set.oldest_boundary (Zone_set.make ~live:[] ~now_ts:10))

let test_commit_interval () =
  let mgr = Txn_manager.create () in
  let log = Txn_manager.commit_log mgr in
  let a = Txn_manager.begin_txn mgr ~now:0 in
  let b = Txn_manager.begin_txn mgr ~now:1 in
  Txn_manager.commit mgr a ~now:2;
  (* Successor b still live: no interval. *)
  check_bool "uncommitted successor" true
    (Prune.commit_interval log ~vs:a.Txn.tid ~ve:b.Txn.tid = None);
  Txn_manager.commit mgr b ~now:3;
  (match Prune.commit_interval log ~vs:a.Txn.tid ~ve:b.Txn.tid with
  | Some (cs, ce) ->
      check_bool "commit-ordered" true (cs < ce);
      check_bool "cs is a's commit" true (cs = Option.get a.Txn.commit_ts)
  | None -> Alcotest.fail "both committed: interval expected");
  (* Initial-load pseudo transaction commits at 0. *)
  (match Prune.commit_interval log ~vs:0 ~ve:a.Txn.tid with
  | Some (cs, _) -> check_int "pseudo txn" 0 cs
  | None -> Alcotest.fail "initial version has an interval");
  (* Current records are never candidates. *)
  check_bool "infinity" true (Prune.commit_interval log ~vs:a.Txn.tid ~ve:Timestamp.infinity = None);
  (* Aborted successor yields no interval. *)
  let c = Txn_manager.begin_txn mgr ~now:4 in
  Txn_manager.abort mgr c ~now:5;
  check_bool "aborted successor" true
    (Prune.commit_interval log ~vs:a.Txn.tid ~ve:c.Txn.tid = None)

(* -------------------------------------------------------------------- *)
(* Llb / Version_store / Prune_stats bookkeeping *)

let test_llb_accounting () =
  let llb = Llb.create () in
  check_int "empty" 0 (Llb.chain_count llb);
  let c1 = Llb.get_or_create llb ~rid:1 in
  check_bool "idempotent" true (Llb.get_or_create llb ~rid:1 == c1);
  let v i = Version.make ~rid:1 ~vs:(10 * i) ~ve:(10 * (i + 1)) ~vs_time:0 ~ve_time:1 ~bytes:10 ~payload:i in
  ignore (Chain.push_newest c1 (v 1) ~seg_id:0);
  ignore (Chain.push_newest c1 (v 2) ~seg_id:0);
  let c2 = Llb.get_or_create llb ~rid:2 in
  ignore (Chain.push_newest c2 (Version.make ~rid:2 ~vs:5 ~ve:6 ~vs_time:0 ~ve_time:1 ~bytes:10 ~payload:0) ~seg_id:0);
  check_int "total live" 3 (Llb.total_live_versions llb);
  check_int "max chain" 2 (Llb.max_live_chain llb);
  check_int "histogram counts chains" 2 (Histogram.total (Llb.chain_length_histogram llb));
  Llb.clear llb;
  check_int "cleared" 0 (Llb.chain_count llb)

let test_version_store_accounting () =
  let store = Version_store.create () in
  let chain = Chain.create 0 in
  let mk id lo hi =
    let seg = Segment.create ~id ~cls:Vclass.Hot ~cap_bytes:1000 ~now:0 in
    let v = Version.make ~rid:0 ~vs:lo ~ve:hi ~vs_time:0 ~ve_time:1 ~bytes:100 ~payload:0 in
    Segment.add seg (Chain.push_newest chain v ~seg_id:id);
    seg
  in
  let s1 = mk 1 10 20 in
  let s2 = mk 2 20 30 in
  Version_store.harden store s1 ~now:(Clock.ms 1);
  Version_store.harden store s2 ~now:(Clock.ms 2);
  check_int "live bytes" 200 (Version_store.live_bytes store);
  check_int "resident" 2 (Version_store.resident_count store);
  Version_store.cut store s1 ~now:(Clock.ms 5);
  check_int "bytes after cut" 100 (Version_store.live_bytes store);
  check_int "one delay recorded" 1 (List.length (Version_store.cut_delays store));
  (match Version_store.cut_delays store with
  | [ (cls, d) ] ->
      check_bool "class" true (cls = Vclass.Hot);
      check_int "delay" (Clock.ms 4) d
  | _ -> Alcotest.fail "expected one delay");
  Version_store.clear store;
  check_int "cleared bytes" 0 (Version_store.live_bytes store);
  check_int "lifetime counters survive" 2 (Version_store.hardened_count store);
  let unhardened = mk 3 30 40 in
  Alcotest.check_raises "cut unhardened"
    (Invalid_argument "Version_store.cut: segment not hardened") (fun () ->
      Version_store.cut store unhardened ~now:(Clock.ms 9))

let test_prune_stats_reset () =
  let stats = Prune_stats.create () in
  Prune_stats.note_relocated stats;
  Prune_stats.note_prune1 stats Vclass.Hot;
  check_int "relocated" 1 (Prune_stats.relocated stats);
  check_int "in flight" 0 (Prune_stats.in_flight stats);
  Prune_stats.reset stats;
  check_int "reset" 0 (Prune_stats.relocated stats);
  check_bool "pp renders" true (String.length (Format.asprintf "%a" Prune_stats.pp stats) > 0)

let test_vclass_of_index_invalid () =
  Alcotest.check_raises "bad index" (Invalid_argument "Vclass.of_index") (fun () ->
      ignore (Vclass.of_index 3))

let suites =
  [
    ( "core.sweep",
      [
        Alcotest.test_case "drops dead sealed segments" `Quick test_sweep_drops_dead_sealed;
        Alcotest.test_case "flushes on memory pressure" `Quick test_sweep_flushes_on_pressure;
        Alcotest.test_case "sealed stays readable" `Quick test_sealed_segments_remain_readable;
      ] );
    ( "core.ablation",
      [
        Alcotest.test_case "single class" `Quick test_ablation_single_class;
        Alcotest.test_case "oldest-active suspends pruning" `Quick
          test_ablation_oldest_active_suspends_pruning;
        Alcotest.test_case "dead zones prune past LLT" `Quick
          test_ablation_dead_zones_prune_past_llt;
      ] );
    ( "core.translation",
      [
        Alcotest.test_case "oldest boundary" `Quick test_oldest_boundary;
        Alcotest.test_case "commit_interval" `Quick test_commit_interval;
      ] );
    ( "core.bookkeeping",
      [
        Alcotest.test_case "llb" `Quick test_llb_accounting;
        Alcotest.test_case "version store" `Quick test_version_store_accounting;
        Alcotest.test_case "prune stats" `Quick test_prune_stats_reset;
        Alcotest.test_case "vclass bounds" `Quick test_vclass_of_index_invalid;
      ] );
  ]
