examples/tuning.ml: Access Classifier Clock Driver Exp_config List Option Printf Prune_stats Runner Schema Siro_engine State Table Vclass
