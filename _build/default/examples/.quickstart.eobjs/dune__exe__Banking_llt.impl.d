examples/banking_llt.ml: Access Exp_config List Offrow_engine Printf Runner Schema Siro_engine Table
