examples/quickstart.mli:
