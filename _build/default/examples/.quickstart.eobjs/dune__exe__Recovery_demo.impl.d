examples/recovery_demo.ml: Clock Driver Engine Format List Printf Schema Siro_engine
