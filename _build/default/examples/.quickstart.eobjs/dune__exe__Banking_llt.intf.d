examples/banking_llt.mli:
