examples/tuning.mli:
