examples/quickstart.ml: Array Classifier Clock Driver Format Prune_stats Siro State Txn Txn_manager Vclass Vcutter Version Vsorter
