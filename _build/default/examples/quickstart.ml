(* Quickstart: drive vDriver's public API by hand.

   We build a transaction manager and a vDriver instance, update a SIRO
   record slot a few times, and watch what the paper's machinery does:
   dead-zone pruning kills versions nobody can see, an LLT pins exactly
   its snapshot, and vCutter reclaims the space the moment the LLT
   commits.

   Run with: dune exec examples/quickstart.exe *)

let ms = Clock.ms

let () =
  print_endline "== vDriver quickstart ==\n";
  let mgr = Txn_manager.create () in
  let config =
    {
      State.default_config with
      State.segment_bytes = 384 (* 3 versions of 128 bytes *);
      vbuffer_bytes = 256 (* tiny: sealed segments flush immediately *);
      zone_refresh_period = 0 (* always-fresh dead zones for the demo *);
      classifier = Classifier.create ~delta_hot:(ms 5) ~delta_llt:(ms 10) ();
    }
  in
  let driver = Driver.create ~config mgr in
  let slots = Array.init 4 (fun rid -> Siro.create ~rid ~bytes:128 ~payload:0 ~vs:0 ~vs_time:0) in


  (* A helper that runs one committed update through SIRO-versioning,
     handing any displaced version to vSorter. *)
  let update_rid ~rid ~now ~payload =
    let slot = slots.(rid) in
    let txn = Txn_manager.begin_txn mgr ~now in
    let r = Siro.update slot ~vs:txn.Txn.tid ~vs_time:now ~payload ~bytes:128 in
    (match r.Siro.relocated with
    | Some v -> (
        match Driver.relocate driver v ~now with
        | Vsorter.Pruned_first cls ->
            Format.printf "  update %d: displaced %a -> dead on arrival (1st prune, %a)@."
              payload Version.pp v Vclass.pp cls
        | Vsorter.Buffered cls ->
            Format.printf "  update %d: displaced %a -> buffered in VC_%a@." payload Version.pp
              v Vclass.pp cls)
    | None -> Format.printf "  update %d: in-row placeholder absorbed the old version@." payload);
    Txn_manager.commit mgr txn ~now:(now + Clock.us 50)
  in
  let update ~now ~payload = update_rid ~rid:0 ~now ~payload in

  print_endline "1. Updates with no concurrent readers: every displaced version";
  print_endline "   falls inside the [-inf, C^T] dead zone and is pruned at once.";
  for i = 1 to 4 do
    update ~now:(ms i) ~payload:i
  done;
  Format.printf "   version space used: %d bytes, longest chain: %d@.@."
    (Driver.space_bytes driver)
    (Driver.max_chain_length driver);

  print_endline "2. A long-lived transaction begins; updates continue on all";
  print_endline "   records, so each record's version spanning the LLT's snapshot";
  print_endline "   is pinned and classified into VC_llt.";
  let llt = Txn_manager.begin_txn mgr ~now:(ms 5) in
  for i = 5 to 9 do
    for rid = 0 to 3 do
      update_rid ~rid ~now:(ms ((i * 4) + rid)) ~payload:i
    done
  done;
  (* The sealed VC_llt segment exceeds the tiny vBuffer budget and is
     hardened into the version store by the sweep. *)
  let swept = Driver.sweep driver ~now:(ms 38) in
  Format.printf "   sweep: %d segment(s) hardened to the version store@."
    swept.Vsorter.segments_flushed;
  Format.printf "   the LLT pinned its snapshot; space: %d bytes, chain: %d@."
    (Driver.space_bytes driver)
    (Driver.max_chain_length driver);
  (match Driver.read driver llt.Txn.view ~rid:0 with
  | Some (v, _, hops) ->
      Format.printf "   the LLT still reads its snapshot %a (payload %d, %d hops)@.@." Version.pp
        v v.Version.payload hops
  | None -> failwith "representation invariant violated!");

  print_endline "3. The LLT commits; vCutter's next pass reclaims everything.";
  Txn_manager.commit mgr llt ~now:(ms 40);
  ignore (Driver.flush_all driver ~now:(ms 41));
  let r = Driver.vcutter_step driver ~now:(ms 42) ~max_segments:16 in
  Format.printf "   vCutter cut %d segment(s), %d version(s), %d bytes@." r.Vcutter.segments_cut
    r.Vcutter.versions_cut r.Vcutter.bytes_reclaimed;
  Format.printf "   version space used: %d bytes, longest chain: %d@.@."
    (Driver.space_bytes driver)
    (Driver.max_chain_length driver);

  Format.printf "Pruning breakdown:@.%a@." Prune_stats.pp (Driver.stats driver)
