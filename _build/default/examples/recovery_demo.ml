(* Recovery demo (§3.5, Figure 10): transaction abort is a bit toggle in
   the SIRO page; crash recovery toggles losers back and empties all
   off-row state (no new transaction can ever request it).

   Run with: dune exec examples/recovery_demo.exe *)

let () =
  print_endline "== Undo recovery in vDriver ==\n";
  let schema =
    { Schema.default with Schema.tables = 1; rows_per_table = 8; record_bytes = 64 }
  in
  let eng = Siro_engine.create ~flavor:`Pg schema in
  let driver = Siro_engine.driver_exn eng in
  let now = ref 0 in
  let tick () =
    now := !now + Clock.us 100;
    !now
  in

  (* Build some committed history on record 0 so off-row state exists. *)
  let committed_write rid payload =
    let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
    (match eng.Engine.write txn ~rid ~payload ~now:(tick ()) with
    | Engine.Committed_path _ -> ()
    | Engine.Conflict _ -> failwith "unexpected conflict");
    ignore (eng.Engine.commit txn ~now:(tick ()))
  in
  let read_as_new rid =
    let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
    let payload, _ = eng.Engine.read txn ~rid ~now:(tick ()) in
    ignore (eng.Engine.commit txn ~now:(tick ()));
    payload
  in
  List.iter (fun p -> committed_write 0 p) [ 11; 22; 33 ];
  Printf.printf "committed history on record 0: 11, 22, 33 -> reads %d\n" (read_as_new 0);

  (* 1. Transaction abort: Figure 10(a). *)
  print_endline "\n1. Abort: T updates record 0 to 99, then rolls back.";
  let t49, _ = eng.Engine.begin_txn ~now:(tick ()) in
  (match eng.Engine.write t49 ~rid:0 ~payload:99 ~now:(tick ()) with
  | Engine.Committed_path _ -> ()
  | Engine.Conflict _ -> failwith "unexpected conflict");
  Printf.printf "   before abort, T reads its own write: %d\n"
    (fst (eng.Engine.read t49 ~rid:0 ~now:(tick ())));
  ignore (eng.Engine.abort t49 ~now:(tick ()));
  Printf.printf "   after abort, a new reader sees: %d (toggled back, off-row untouched)\n"
    (read_as_new 0);

  (* 2. Crash: Figure 10(b). A loser is mid-flight when we crash. *)
  print_endline "\n2. Crash: a loser transaction updated record 1 to 77; power fails.";
  committed_write 1 44;
  let space_before = Driver.space_bytes driver in
  let loser, _ = eng.Engine.begin_txn ~now:(tick ()) in
  (match eng.Engine.write loser ~rid:1 ~payload:77 ~now:(tick ()) with
  | Engine.Committed_path _ -> ()
  | Engine.Conflict _ -> failwith "unexpected conflict");
  Printf.printf "   off-row version space before crash: %d bytes\n" space_before;
  let recovery_time = eng.Engine.crash () in
  Format.printf "   restart took %a of simulated recovery work\n" Clock.pp recovery_time;
  Printf.printf "   restart: record 1 reads %d (loser rolled back by bit toggle)\n"
    (read_as_new 1);
  Printf.printf "   off-row version space after restart: %d bytes (emptied wholesale)\n"
    (Driver.space_bytes driver);
  Printf.printf "   record 0 still reads %d — committed data survives\n" (read_as_new 0)
