(* Banking scenario: an OLTP ledger (balance transfers) that must keep
   running while a long compliance report scans historical state — the
   workload the paper's introduction motivates. We run the same scenario
   on vanilla MySQL-style versioning and on the vDriver engine and
   compare throughput and version-space damage.

   Run with: dune exec examples/banking_llt.exe *)

let scenario engine_name =
  let cfg =
    {
      Exp_config.default with
      Exp_config.name = "banking-" ^ engine_name;
      duration_s = 12.;
      workers = 8;
      reads_per_txn = 2;
      writes_per_txn = 2 (* debit one account, credit another *);
      schema =
        { Schema.default with Schema.tables = 4; rows_per_table = 1000; record_bytes = 128 };
      phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
      (* The compliance report: one transaction reading for 8 seconds. *)
      llts = [ { Exp_config.start_s = 2.; duration_s = 8.; count = 1 } ];
    }
  in
  let engine schema =
    match engine_name with
    | "vanilla" -> Offrow_engine.create schema
    | _ -> Siro_engine.create ~flavor:`Mysql schema
  in
  Runner.run ~engine cfg

let () =
  print_endline "== Banking ledger under a long compliance report ==";
  print_endline "8 tellers transfer money continuously; at t=2s an auditor";
  print_endline "opens one repeatable-read report that runs for 8 seconds.\n";
  let vanilla = scenario "vanilla" in
  let vdriver = scenario "vdriver" in
  let row name (r : Runner.result) =
    let before = Runner.avg_throughput r ~between:(0.5, 1.5) in
    let during = Runner.avg_throughput r ~between:(4., 9.) in
    [
      name;
      Printf.sprintf "%.0f" before;
      Printf.sprintf "%.0f" during;
      (if during > 0. then Printf.sprintf "%.0f%%" (100. *. during /. before) else "-");
      Table.fmt_bytes (Runner.peak_space r);
      string_of_int (Runner.peak_chain r);
    ]
  in
  Table.print
    ~header:
      [ "engine"; "transfers/s"; "transfers/s (report)"; "retained"; "peak versions"; "peak chain" ]
    [ row "mysql-vanilla" vanilla; row "mysql-vdriver" vdriver ];
  print_endline "\nThroughput over time (transfers/s):";
  let pick r t =
    match List.find_opt (fun (x, _) -> int_of_float x = t) r.Runner.throughput with
    | Some (_, v) -> Printf.sprintf "%.0f" v
    | None -> "-"
  in
  Table.print
    ~header:[ "sec"; "vanilla"; "vdriver" ]
    (List.map
       (fun t -> [ string_of_int t; pick vanilla t; pick vdriver t ])
       [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]);
  print_endline "\nThe report pins versions in both engines, but vDriver's";
  print_endline "classification isolates them in VC_llt segments so dead hot";
  print_endline "versions keep being reclaimed and the tellers never stall."
