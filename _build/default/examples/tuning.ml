(* Tuning demo: the two knobs the paper studies — segment size (§5.2.6)
   and the LLT-identification threshold delta_llt (§5.2.3) — exercised
   through the public configuration API.

   Run with: dune exec examples/tuning.exe *)

let run ~segment_bytes ~delta_llt =
  let driver_config =
    {
      State.default_config with
      State.segment_bytes;
      classifier = Classifier.create ~delta_llt ();
    }
  in
  let cfg =
    {
      Exp_config.default with
      Exp_config.name = "tuning";
      duration_s = 8.;
      workers = 8;
      schema = { Schema.default with Schema.tables = 4; rows_per_table = 500 };
      phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 1.2 } ];
      llts = [ { Exp_config.start_s = 1.; duration_s = 6.; count = 2 } ];
    }
  in
  Runner.run ~engine:(Siro_engine.create ~driver_config ~flavor:`Mysql) cfg

let () =
  print_endline "== Tuning vDriver: segment size and delta_llt ==\n";
  print_endline "Segment size trades management overhead against chain length";
  print_endline "(unfilled segments cannot be cleaned — Figure 19):";
  let rows =
    List.map
      (fun kib ->
        let r = run ~segment_bytes:(kib * 1024) ~delta_llt:(Clock.ms 200) in
        [
          Printf.sprintf "%d KiB" kib;
          string_of_int (Runner.peak_chain r);
          Table.fmt_bytes (Runner.peak_space r);
          Printf.sprintf "%.0f" (Runner.avg_throughput r ~between:(3., 6.));
        ])
      [ 16; 64; 256; 1024 ]
  in
  Table.print ~header:[ "segment"; "peak-chain"; "peak-space"; "tput(LLT)" ] rows;

  print_endline "\ndelta_llt trades vulnerability-window misclassification against";
  print_endline "false LLT positives (Figure 16):";
  let rows =
    List.map
      (fun (label, delta_llt) ->
        let r = run ~segment_bytes:(64 * 1024) ~delta_llt in
        let d = Option.get r.Runner.driver in
        let stats = Driver.stats d in
        [
          label;
          string_of_int (Prune_stats.stored stats Vclass.Llt);
          string_of_int (Prune_stats.stored stats Vclass.Hot);
          Table.fmt_bytes (Runner.peak_space r);
        ])
      [
        ("50ms", Clock.ms 50);
        ("200ms", Clock.ms 200);
        ("1s", Clock.seconds 1.);
        ("5s (huge)", Clock.seconds 5.);
      ]
  in
  Table.print
    ~header:[ "delta_llt"; "stored-as-LLT"; "stored-as-HOT"; "peak-space" ]
    rows;
  print_endline "\nA huge delta_llt never identifies the LLTs, so pinned versions";
  print_endline "land in HOT segments and suspend their cleaning until the LLT ends."
