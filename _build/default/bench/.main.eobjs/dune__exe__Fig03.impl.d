bench/fig03.ml: Access Common Exp_config Histogram List Printf Runner Table
