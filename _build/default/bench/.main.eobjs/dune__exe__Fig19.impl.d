bench/fig19.ml: Access Common Exp_config List Runner Siro_engine State Table
