bench/fig14.ml: Access Common Exp_config List Printf Runner String Table
