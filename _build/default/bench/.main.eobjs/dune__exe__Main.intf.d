bench/main.mli:
