bench/ablation.ml: Access Common Driver Exp_config List Printf Prune_stats Runner Siro_engine State Table
