bench/micro.ml: Analyze Bechamel Benchmark Chain Classifier Collab Common Hashtbl Instance List Measure Mvcc_search Printf Prune Read_view Rng Staged Table Test Time Toolkit Version Zipf Zone_set
