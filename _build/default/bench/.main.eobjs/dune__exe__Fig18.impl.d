bench/fig18.ml: Access Common Exp_config List Runner Schema Table
