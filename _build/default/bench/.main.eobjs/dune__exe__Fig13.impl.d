bench/fig13.ml: Access Common Exp_config List Runner Table
