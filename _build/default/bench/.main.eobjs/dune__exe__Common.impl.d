bench/common.ml: Float Inrow_engine List Offrow_engine Printf Runner Schema Siro_engine Sys Table
