bench/main.ml: Ablation Array Common Fig03 Fig13 Fig14 Fig15 Fig16 Fig17 Fig18 Fig19 List Micro Printf Recovery String Sys Unix
