bench/recovery.ml: Clock Common Engine Format List Schema Table
