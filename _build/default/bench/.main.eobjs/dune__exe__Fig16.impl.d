bench/fig16.ml: Access Classifier Clock Common Driver Exp_config List Printf Runner Schema Siro_engine State Stats Table Vclass Version_store
