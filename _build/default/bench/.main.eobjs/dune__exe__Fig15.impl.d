bench/fig15.ml: Access Classifier Clock Common Driver Exp_config List Printf Prune_stats Runner Schema Siro_engine State Table Vclass
