bench/fig17.ml: Access Common Exp_config List Runner Table
