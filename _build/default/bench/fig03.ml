(* Figure 3: the motivating experiment. Vanilla PostgreSQL and MySQL
   running a uniform OLTP mix; a group of LLTs joins and throughput
   collapses until it ends. *)

let cfg ename =
  {
    Exp_config.default with
    Exp_config.name = "fig3-" ^ ename;
    duration_s = Common.sec 20.;
    workers = 16;
    schema = Common.small_schema;
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Uniform } ];
    llts =
      [ { Exp_config.start_s = Common.sec 5.; duration_s = Common.sec 12.; count = 4 } ];
  }

let run () =
  Common.section ~figure:"Figure 3" ~title:"Effects of a long-lived transaction (vanilla engines)"
    ~expectation:
      "both vanilla engines collapse sharply while the LLT group lives \
       (PostgreSQL from chain traversal + page splits, MySQL from latch \
       duration + undo I/O) and recover once it ends";
  let runs =
    List.map
      (fun ename -> (ename, Runner.run ~engine:(Common.make_engine ename) (cfg ename)))
      [ "pg"; "mysql" ]
  in
  print_endline "Throughput (commits/s):";
  Common.print_multi_series ~col_name:(fun n -> n) ~every:1.0 runs (fun r -> r.Runner.throughput);
  print_endline "";
  let rows =
    List.map
      (fun (name, r) ->
        let before = Common.window r ~lo:1. ~hi:4. in
        let during = Common.window r ~lo:8. ~hi:16. in
        [
          name;
          Common.fmt_tput before;
          Common.fmt_tput during;
          Common.fmt_ratio before during;
          Table.fmt_bytes (Runner.peak_space r);
          string_of_int (Runner.peak_chain r);
          Printf.sprintf "%d us" (Histogram.percentile r.Runner.latency_us 0.99);
        ])
      runs
  in
  Table.print
    ~header:
      [ "engine"; "tput-before"; "tput-during-LLT"; "collapse"; "peak-space"; "peak-chain"; "p99-latency" ]
    rows
