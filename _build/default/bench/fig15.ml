(* Figure 15: breakdown of vDriver's pruning on the MySQL-flavor engine,
   varying the Zipfian exponent, with and without LLTs. Each relocated
   version is classified and lands in exactly one bucket: 1st prune
   (relocation-time dead-zone pruning), 2nd prune (segment pruning at
   flush) or "no prune" (written to version space). *)

let zipfs = [ None; Some 0.8; Some 0.9; Some 1.0; Some 1.1; Some 1.2; Some 1.3 ]

let cfg ~zipf ~with_llts =
  let pattern = match zipf with None -> Access.Uniform | Some s -> Access.Zipfian s in
  {
    Exp_config.default with
    Exp_config.name = "fig15";
    duration_s = Common.sec 15.;
    workers = 16;
    (* The paper's full 48x1000 schema: the LLT-pinned population (one
       spanning version per record per LLT group) must be a visible
       fraction of all relocations. *)
    schema = Schema.default;
    phases = [ { Exp_config.at_s = 0.; pattern } ];
    llts =
      (if with_llts then
         [ { Exp_config.start_s = Common.sec 2.; duration_s = Common.sec 10.; count = 4 } ]
       else []);
  }

let pct part total = if total = 0 then 0. else 100. *. float_of_int part /. float_of_int total

let breakdown_row name (stats : Prune_stats.t) =
  let total = Prune_stats.relocated stats in
  let p cls stage =
    let v =
      match stage with
      | `P1 -> Prune_stats.prune1 stats cls
      | `P2 -> Prune_stats.prune2 stats cls
      | `Stored -> Prune_stats.stored stats cls
    in
    Printf.sprintf "%.1f" (pct v total)
  in
  [
    name;
    string_of_int total;
    p Vclass.Hot `P1;
    p Vclass.Hot `P2;
    p Vclass.Hot `Stored;
    p Vclass.Cold `P1;
    p Vclass.Cold `P2;
    p Vclass.Cold `Stored;
    p Vclass.Llt `P1;
    p Vclass.Llt `P2;
    p Vclass.Llt `Stored;
  ]

let header =
  [
    "zipf";
    "relocated";
    "hot-1st%";
    "hot-2nd%";
    "hot-none%";
    "cold-1st%";
    "cold-2nd%";
    "cold-none%";
    "llt-1st%";
    "llt-2nd%";
    "llt-none%";
  ]

let run_half ~with_llts =
  Printf.printf "\n%s LLTs:\n" (if with_llts then "With" else "Without");
  let rows =
    List.map
      (fun zipf ->
        let label = match zipf with None -> "uniform" | Some s -> Printf.sprintf "%.1f" s in
        let driver_config =
          {
            State.default_config with
            State.classifier =
              (* delta_hot is a multiple of the uniform workload's
                 average update interval (~120 ms); delta_llt sits
                 inside the skewed relocation-lag distribution, so
                 identified LLTs pin correctly for ordinary records
                 while frequently-updated records relocate their pinned
                 version inside the vulnerability window — the paper's
                 classification-error regime. *)
              Classifier.create ~delta_hot:(Clock.ms 500) ~delta_llt:(Clock.ms 150) ();
          }
        in
        let engine schema = Siro_engine.create ~driver_config ~flavor:`Mysql schema in
        let r = Runner.run ~engine (cfg ~zipf ~with_llts) in
        match r.Runner.driver with
        | Some d -> breakdown_row label (Driver.stats d)
        | None -> assert false)
      zipfs
  in
  Table.print ~header rows

let run () =
  Common.section ~figure:"Figure 15" ~title:"Pruning effects of vDriver on MySQL"
    ~expectation:
      "a large majority of versions die in the two pruning stages (>90% in \
       the 1st prune up to zipf ~1.1); under higher skew versions survive the \
       1st prune but die at the 2nd; with LLTs an 'llt-none' share appears, \
       and as skew grows misclassified pinned versions shift it into \
       'hot-none' (classification error)";
  run_half ~with_llts:false;
  run_half ~with_llts:true
