(* Bechamel micro-benchmarks for vDriver's hot paths: the per-version
   operations whose costs the simulator's cost model abstracts. *)

open Bechamel
open Toolkit

let live_256 = List.init 256 (fun i -> (i * 7) + 1)
let zones_256 = Zone_set.make ~live:live_256 ~now_ts:100_000

let views_64 =
  List.init 64 (fun i ->
      let creator = 10_000 + (i * 13) in
      Read_view.make ~creator ~actives:[ creator - 5 ] ~high:creator)

let classifier = Classifier.create ()

let sample_version =
  Version.make ~rid:7 ~vs:5_000 ~ve:5_040 ~vs_time:1_000_000 ~ve_time:2_000_000 ~bytes:256
    ~payload:1

let chain_10k =
  let chain = Chain.create 0 in
  for i = 1 to 10_000 do
    ignore
      (Chain.push_newest chain
         (Version.make ~rid:0 ~vs:(i * 10) ~ve:((i + 1) * 10) ~vs_time:i ~ve_time:(i + 1)
            ~bytes:64 ~payload:i)
         ~seg_id:0)
  done;
  chain

let view_mid = Read_view.make ~creator:50_005 ~actives:[] ~high:50_005
let zipf = Zipf.create ~n:100_000 ~s:1.2
let rng = Rng.create 1

let tests =
  Test.make_grouped ~name:"vdriver"
    [
      Test.make ~name:"zone_set.make/256-live"
        (Staged.stage (fun () -> Zone_set.make ~live:live_256 ~now_ts:100_000));
      Test.make ~name:"zone_set.prunable"
        (Staged.stage (fun () -> Zone_set.prunable zones_256 ~vs:40 ~ve:45));
      Test.make ~name:"prune.by_views/64-views"
        (Staged.stage (fun () ->
             Prune.prunable_by_views ~views:views_64 ~vs:9_000 ~ve:9_001));
      Test.make ~name:"read_view.snapshot_read"
        (Staged.stage (fun () -> Read_view.snapshot_read view_mid ~vs:40_000 ~ve:60_000));
      Test.make ~name:"classifier.classify"
        (Staged.stage (fun () ->
             Classifier.classify classifier ~llt_views:views_64 sample_version));
      Test.make ~name:"chain.find_visible/10k"
        (Staged.stage (fun () -> Chain.find_visible chain_10k view_mid));
      Test.make ~name:"mvcc_search/10k"
        (Staged.stage (fun () ->
             Mvcc_search.find_visible ~view:view_mid ~len:10_000 ~vs_of:(fun i -> (i + 1) * 10)));
      Test.make ~name:"collab.episode"
        (Staged.stage (fun () ->
             let c = Collab.create () in
             Collab.sorter c ~delete:ignore ~insert:ignore));
      Test.make ~name:"zipf.sample" (Staged.stage (fun () -> Zipf.sample zipf rng));
    ]

let run () =
  Common.section ~figure:"Micro" ~title:"Bechamel micro-benchmarks of vDriver primitives"
    ~expectation:
      "pruning checks and classification are sub-microsecond, which is what \
       makes the 1st prune affordable on the relocation path";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%.1f ns/op" e
        | Some _ | None -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Table.print ~header:[ "operation"; "cost" ] (List.sort compare !rows)
