(* Figure 16: effect of classification errors, measured as the cut delay
   of version segments (hardening-to-purge time), for a legitimate and a
   huge delta_llt under uniform and highly-skewed access. *)

let llt_duration = 20.

let driver_config ~delta_llt =
  {
    State.default_config with
    State.classifier = Classifier.create ~delta_hot:(Clock.ms 50) ~delta_llt ();
    segment_bytes = 16 * 1024;
    (* A small vBuffer relative to the pinned population (~5 MiB of LLT
       snapshots) so surviving segments actually reach stable storage —
       cut delay is defined as hardened-to-purged time. *)
    vbuffer_bytes = 256 * 1024;
  }

let cfg ~pattern =
  {
    Exp_config.default with
    Exp_config.name = "fig16";
    duration_s = Common.sec 30.;
    (* Low write pressure: per-record update intervals around a second,
       so pinned versions relocate throughout the LLT's lifetime and
       hardening times (hence cut delays) spread (§5.2.3). *)
    workers = 8;
    writes_per_txn = 1;
    schema = { Schema.default with Schema.tables = 4; rows_per_table = 5000 };
    phases = [ { Exp_config.at_s = 0.; pattern } ];
    llts =
      [ { Exp_config.start_s = Common.sec 4.; duration_s = Common.sec llt_duration; count = 1 } ];
  }

let summarize name (r : Runner.result) =
  let by_class cls =
    List.filter_map (fun (c, d) -> if c = cls then Some (Clock.to_seconds d) else None)
      r.Runner.cut_delays
  in
  let cell cls =
    match by_class cls with
    | [] -> "-"
    | ds ->
        Printf.sprintf "%d cut, p50=%.1fs max=%.1fs" (List.length ds)
          (Stats.percentile ds 0.5) (Stats.maximum ds)
  in
  let resident =
    match r.Runner.driver with
    | Some d -> Version_store.resident_count (Driver.store d)
    | None -> 0
  in
  [ name; cell Vclass.Hot; cell Vclass.Cold; cell Vclass.Llt; string_of_int resident ]

let run () =
  Common.section ~figure:"Figure 16" ~title:"Effect of classification errors (cut delay)"
    ~expectation:
      "with a legitimate delta_llt and uniform access, VC_llt segment cut \
       delays spread over the LLT's lifetime and HOT segments are cut \
       promptly; under high skew a few HOT segments stay uncut for a long \
       time (they contain misclassified LLT-pinned versions); with a huge \
       delta_llt the suspension of contaminated HOT segments happens \
       regardless of the distribution";
  let cases =
    [
      ("normal-dLLT/uniform", Clock.ms 50, Access.Uniform);
      ("normal-dLLT/zipf1.2", Clock.ms 50, Access.Zipfian 1.2);
      ("huge-dLLT/uniform", Clock.seconds (Common.sec 15.), Access.Uniform);
      ("huge-dLLT/zipf1.2", Clock.seconds (Common.sec 15.), Access.Zipfian 1.2);
    ]
  in
  let rows =
    List.map
      (fun (name, delta_llt, pattern) ->
        let engine schema =
          Siro_engine.create ~driver_config:(driver_config ~delta_llt) ~flavor:`Pg schema
        in
        let r = Runner.run ~engine (cfg ~pattern) in
        summarize name r)
      cases
  in
  Table.print
    ~header:[ "case"; "HOT cut-delay"; "COLD cut-delay"; "LLT cut-delay"; "uncut-at-end" ]
    rows
