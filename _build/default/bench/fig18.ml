(* Figure 18: effect of record size on PostgreSQL-flavor engines. Bigger
   records overflow in-row pages faster, so vanilla PostgreSQL splits
   more and collapses harder; SIRO keeps one version in-row and is
   insensitive. *)

let sizes = [ 128; 1024 ]

let cfg ~record_bytes ename =
  {
    Exp_config.default with
    Exp_config.name = "fig18-" ^ ename;
    duration_s = Common.sec 20.;
    workers = 16;
    schema = { Common.small_schema with Schema.record_bytes };
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 1.1 } ];
    llts =
      [ { Exp_config.start_s = Common.sec 5.; duration_s = Common.sec 12.; count = 4 } ];
  }

let run () =
  Common.section ~figure:"Figure 18" ~title:"Effect of record size (PostgreSQL flavor)"
    ~expectation:
      "vanilla PostgreSQL gets worse as records grow (pages overflow and \
       split sooner); PostgreSQL+vDriver barely changes with record size";
  let rows =
    List.concat_map
      (fun record_bytes ->
        List.map
          (fun ename ->
            let r =
              Runner.run ~engine:(Common.make_engine ename) (cfg ~record_bytes ename)
            in
            let before = Common.window r ~lo:1. ~hi:4. in
            let during = Common.window r ~lo:8. ~hi:16. in
            let splits =
              match List.rev r.Runner.splits with (_, v) :: _ -> int_of_float v | [] -> 0
            in
            [
              string_of_int record_bytes;
              ename;
              Common.fmt_tput before;
              Common.fmt_tput during;
              Common.fmt_ratio before during;
              string_of_int splits;
              Table.fmt_bytes (Runner.peak_space r);
            ])
          [ "pg"; "pg-vdriver" ])
      sizes
  in
  Table.print
    ~header:
      [ "record-bytes"; "engine"; "tput-before"; "tput-during-LLT"; "collapse"; "splits"; "peak-space" ]
    rows
