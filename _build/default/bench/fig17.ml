(* Figure 17: throughput behavior on multicores. The paper pins mysqld
   to 24/48/96 cores; we vary simulated worker counts 8/16/32 (the
   simulator's cores). *)

let worker_counts = [ 8; 16; 32 ]

let cfg ~workers ename =
  {
    Exp_config.default with
    Exp_config.name = "fig17-" ^ ename;
    duration_s = Common.sec 20.;
    workers;
    schema = Common.small_schema;
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 1.1 } ];
    llts =
      [ { Exp_config.start_s = Common.sec 5.; duration_s = Common.sec 12.; count = 4 } ];
  }

let run () =
  Common.section ~figure:"Figure 17" ~title:"Throughput behavior on multicores"
    ~expectation:
      "the vanilla engine suffers the same collapse at every core count \
       (more cores do not help against chain-induced latch convoys) while \
       vDriver's throughput scales with cores and stays flat under the LLTs";
  let rows =
    List.concat_map
      (fun workers ->
        List.map
          (fun ename ->
            let r = Runner.run ~engine:(Common.make_engine ename) (cfg ~workers ename) in
            let before = Common.window r ~lo:1. ~hi:4. in
            let during = Common.window r ~lo:8. ~hi:16. in
            [
              string_of_int workers;
              ename;
              Common.fmt_tput before;
              Common.fmt_tput during;
              Common.fmt_ratio before during;
            ])
          [ "mysql"; "mysql-vdriver" ])
      worker_counts
  in
  Table.print ~header:[ "cores"; "engine"; "tput-before"; "tput-during-LLT"; "collapse" ] rows
