(* Shared plumbing for the per-figure benchmark harnesses.

   Time compression: the paper's runs last 90-700 wall-clock seconds on
   a 96-core server. We shrink the table (8 tables x 500 rows instead of
   48 x 1000) and the run length so per-record update rates — which is
   what drives version-chain growth over an LLT's lifetime — match the
   paper's regime within seconds of simulated time. REPRO_SCALE
   stretches or shrinks every duration (default 1.0). *)

let scale =
  match Sys.getenv_opt "REPRO_SCALE" with
  | Some s -> ( try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

let sec x = x *. scale

let small_schema = { Schema.default with Schema.tables = 8; rows_per_table = 500 }

let make_engine name schema =
  match name with
  | "pg" -> Inrow_engine.create schema
  | "mysql" -> Offrow_engine.create schema
  | "pg-vdriver" -> Siro_engine.create ~flavor:`Pg schema
  | "mysql-vdriver" -> Siro_engine.create ~flavor:`Mysql schema
  | "mysql-interval-gc" -> Offrow_engine.create ~gc:`Interval_scan schema
  | other -> invalid_arg ("unknown engine " ^ other)

let section ~figure ~title ~expectation =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s — %s\n" figure title;
  Printf.printf "Paper expectation: %s\n" expectation;
  Printf.printf "==============================================================\n%!"

(* Average of a series over a scaled window. *)
let window r ~lo ~hi = Runner.avg_throughput r ~between:(sec lo, sec hi)

let value_at series t =
  let rec closest best = function
    | [] -> best
    | (x, v) :: rest ->
        let best =
          match best with
          | Some (bx, _) when abs_float (bx -. t) <= abs_float (x -. t) -> best
          | _ -> Some (x, v)
        in
        closest best rest
  in
  match closest None series with Some (_, v) -> v | None -> 0.

let fmt_tput v = Printf.sprintf "%.0f" v
let fmt_ratio a b = if b <= 0. then "-" else Printf.sprintf "%.1fx" (a /. b)

(* Print one series table with a column per run. *)
let print_multi_series ~col_name ~every runs extract =
  let times =
    match runs with
    | [] -> []
    | (_, r) :: _ -> List.filter_map (fun (t, _) -> if Float.rem t every < 0.5 then Some t else None) (extract r)
  in
  let header = "sec" :: List.map (fun (name, _) -> col_name name) runs in
  let rows =
    List.map
      (fun t ->
        Printf.sprintf "%.0f" t
        :: List.map (fun (_, r) -> Printf.sprintf "%.0f" (value_at (extract r) t)) runs)
      times
  in
  Table.print ~header rows
