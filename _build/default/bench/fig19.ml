(* Figure 19: effect of the version-segment size on the maximum valid
   chain length. Unfilled segments cannot be cleaned (no complete
   descriptor), so large segments let hot records accumulate long
   chains until the segment finally fills. *)

let sizes = [ 64 * 1024; 256 * 1024; 1024 * 1024; 4 * 1024 * 1024; 16 * 1024 * 1024 ]

let cfg ~pattern =
  {
    Exp_config.default with
    Exp_config.name = "fig19";
    duration_s = Common.sec 20.;
    workers = 16;
    schema = Common.small_schema;
    phases = [ { Exp_config.at_s = 0.; pattern } ];
    llts =
      [ { Exp_config.start_s = Common.sec 4.; duration_s = Common.sec 13.; count = 4 } ];
  }

let run () =
  Common.section ~figure:"Figure 19" ~title:"Effect of segment size on max chain length"
    ~expectation:
      "max chain length stays controlled under uniform access for all sizes, \
       but under high skew it grows with the segment size, exceeding 10^3 \
       for 16 MiB segments";
  let rows =
    List.concat_map
      (fun segment_bytes ->
        List.map
          (fun (plabel, pattern) ->
            let driver_config = { State.default_config with State.segment_bytes } in
            let engine schema =
              Siro_engine.create ~driver_config ~flavor:`Mysql schema
            in
            let r = Runner.run ~engine (cfg ~pattern) in
            [
              Table.fmt_bytes segment_bytes;
              plabel;
              string_of_int (Runner.peak_chain r);
              Common.fmt_tput (Common.window r ~lo:8. ~hi:16.);
              Table.fmt_bytes (Runner.peak_space r);
            ])
          [ ("uniform", Access.Uniform); ("zipf1.2", Access.Zipfian 1.2) ])
      sizes
  in
  Table.print
    ~header:[ "segment-size"; "access"; "peak-max-chain"; "tput-during-LLT"; "peak-space" ]
    rows
