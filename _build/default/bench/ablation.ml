(* Ablation study (beyond the paper's figures, validating the design
   choices DESIGN.md calls out): what does each vDriver ingredient buy?

   - `Dead zones -> oldest-active`: replace Theorem 3.5 with the classic
     criterion. Every version younger than the LLT becomes unreclaimable,
     so the 1st prune stops working the moment an LLT appears.
   - `Three-way -> single class`: store every surviving version in one
     cluster. LLT-pinned versions contaminate every segment and suspend
     vCutter entirely until the LLT ends. *)

let variants =
  [
    ("full-vdriver", `Three_way, `Dead_zones);
    ("no-classification", `Single_class, `Dead_zones);
    ("oldest-active-gc", `Three_way, `Oldest_active);
    ("neither", `Single_class, `Oldest_active);
  ]

let cfg =
  {
    Exp_config.default with
    Exp_config.name = "ablation";
    duration_s = Common.sec 20.;
    workers = 16;
    schema = Common.small_schema;
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 0.9 } ];
    llts =
      [ { Exp_config.start_s = Common.sec 4.; duration_s = Common.sec 13.; count = 4 } ];
  }

let gc_comparison () =
  (* Related-work comparison (§2.2): stock purge vs HANA/Steam-style
     interval GC vs vDriver, all under the same LLT scenario. The
     interval collector is as *complete* as vDriver's pruning but pays
     chain-scan I/O through the shared buffer pool. *)
  Printf.printf "\nRelated-work GC comparison (stock purge / interval scan / vDriver):\n";
  let rows =
    List.map
      (fun name ->
        let r = Runner.run ~engine:(Common.make_engine name) cfg in
        [
          name;
          Common.fmt_tput (Common.window r ~lo:1. ~hi:3.);
          Common.fmt_tput (Common.window r ~lo:8. ~hi:16.);
          Table.fmt_bytes (Runner.peak_space r);
          string_of_int (Runner.peak_chain r);
        ])
      [ "mysql"; "mysql-interval-gc"; "mysql-vdriver" ]
  in
  Table.print
    ~header:[ "engine"; "tput-before"; "tput-during-LLT"; "peak-space"; "peak-chain" ]
    rows;
  print_endline
    "note: at this scale the whole working set fits in the buffer pool, so\n\
     the interval scan's chain reads stay cheap and it reclaims as well as\n\
     vDriver; its cost is structural — every pass re-reads every chain\n\
     (here ~100 full-table scans per simulated second), where vDriver only\n\
     inspects versions as they relocate. The remaining throughput gap is\n\
     the §4.2 undo-header/global-mutex work that vDriver eliminates."

let run () =
  Common.section ~figure:"Ablation" ~title:"Which ingredient buys what (not in the paper)"
    ~expectation:
      "dead-zone pruning is what keeps reclamation going during the LLT \
       (oldest-active stops pruning entirely); classification is what keeps \
       the version store small (a single class strands dead versions behind \
       pinned ones until the LLT ends); HANA/Steam-style interval GC \
       reclaims as completely as vDriver but pays chain-scan I/O, the \
       reason eager GC does not transplant to disk-based engines (§2.2)";
  let rows =
    List.map
      (fun (name, classification, pruning) ->
        let driver_config =
          { State.default_config with State.classification; pruning }
        in
        let engine schema = Siro_engine.create ~driver_config ~flavor:`Mysql schema in
        let r = Runner.run ~engine cfg in
        let stats = match r.Runner.driver with Some d -> Driver.stats d | None -> assert false in
        let total = Prune_stats.relocated stats in
        let pruned = Prune_stats.prune1_total stats + Prune_stats.prune2_total stats in
        [
          name;
          Common.fmt_tput (Common.window r ~lo:8. ~hi:16.);
          Table.fmt_bytes (Runner.peak_space r);
          string_of_int (Runner.peak_chain r);
          Printf.sprintf "%.1f%%" (100. *. float_of_int pruned /. float_of_int (max 1 total));
        ])
      variants
  in
  Table.print
    ~header:[ "variant"; "tput-during-LLT"; "peak-space"; "peak-chain"; "pruned%" ]
    rows;
  gc_comparison ()
