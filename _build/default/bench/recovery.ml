(* Recovery-time comparison (§3.5 / §4.2 — beyond the paper's figures).

   Build committed history, leave a batch of loser transactions in
   flight, crash, and compare simulated recovery work: stock MySQL must
   scan rollback-segment undo headers to identify losers before rolling
   them back; PostgreSQL identifies losers directly through pg_xact; the
   SIRO engines additionally roll back by bit toggles and drop all
   off-row state wholesale — near-instant recovery. *)

let schema = { Schema.default with Schema.tables = 4; rows_per_table = 500 }

let run_engine name =
  let eng = Common.make_engine name schema in
  let now = ref 0 in
  let tick () =
    now := !now + Clock.us 100;
    !now
  in
  (* Committed history: fills undo space / heap versions. Keep a reader
     alive so vanilla GC cannot reclaim it before the crash. *)
  let pin, _ = eng.Engine.begin_txn ~now:(tick ()) in
  for i = 1 to 4_000 do
    let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
    (match eng.Engine.write txn ~rid:(i mod Schema.records schema) ~payload:i ~now:(tick ()) with
    | Engine.Committed_path _ -> ()
    | Engine.Conflict _ -> ());
    ignore (eng.Engine.commit txn ~now:(tick ()))
  done;
  ignore pin;
  (* Losers: 16 transactions, 8 writes each, all in flight at the crash. *)
  let losers =
    List.init 16 (fun i ->
        let txn, _ = eng.Engine.begin_txn ~now:(tick ()) in
        for k = 0 to 7 do
          match
            eng.Engine.write txn ~rid:(((i * 31) + (k * 7)) mod Schema.records schema)
              ~payload:(-1) ~now:(tick ())
          with
          | Engine.Committed_path _ | Engine.Conflict _ -> ()
        done;
        txn)
  in
  ignore losers;
  let space_before = (eng.Engine.sample ()).Engine.version_bytes in
  let recovery = eng.Engine.crash () in
  (* Correctness: no -1 payload survives. *)
  let probe, _ = eng.Engine.begin_txn ~now:(tick ()) in
  let clean = ref true in
  for rid = 0 to Schema.records schema - 1 do
    let payload, _ = eng.Engine.read probe ~rid ~now:(tick ()) in
    if payload = -1 then clean := false
  done;
  ignore (eng.Engine.commit probe ~now:(tick ()));
  (name, recovery, space_before, !clean)

let run () =
  Common.section ~figure:"Recovery" ~title:"Crash-recovery work by engine (§3.5, §4.2)"
    ~expectation:
      "MySQL pays an undo-header scan proportional to live undo records to \
       identify losers; PostgreSQL consults the commit log directly; the \
       SIRO engines recover near-instantly (bit toggles, off-row state \
       dropped wholesale)";
  let rows =
    List.map
      (fun name ->
        let name, recovery, space, clean = run_engine name in
        [
          name;
          Format.asprintf "%a" Clock.pp recovery;
          Table.fmt_bytes space;
          (if clean then "yes" else "NO");
        ])
      [ "pg"; "mysql"; "pg-vdriver"; "mysql-vdriver" ]
  in
  Table.print ~header:[ "engine"; "recovery-work"; "version-space-at-crash"; "losers-undone" ] rows
