(* Figure 13: the headline experiment. Two phases (uniform, then
   highly-skewed), an LLT group joining in each phase; all four engines.
   Reports throughput, version-space overhead and the longest valid
   version chain over time. *)

let engines = [ "pg"; "pg-vdriver"; "mysql"; "mysql-vdriver" ]

let cfg ename =
  {
    Exp_config.default with
    Exp_config.name = "fig13-" ^ ename;
    duration_s = Common.sec 60.;
    workers = 16;
    schema = Common.small_schema;
    phases =
      [
        { Exp_config.at_s = 0.; pattern = Access.Uniform };
        { Exp_config.at_s = Common.sec 30.; pattern = Access.Zipfian 1.2 };
      ];
    llts =
      [
        { Exp_config.start_s = Common.sec 8.; duration_s = Common.sec 15.; count = 4 };
        { Exp_config.start_s = Common.sec 38.; duration_s = Common.sec 15.; count = 4 };
      ];
  }

let run () =
  Common.section ~figure:"Figure 13"
    ~title:"Throughput and version space overhead (uniform phase, then skewed phase)"
    ~expectation:
      "vanilla engines collapse in both phases (worse under skew) and their \
       version space grows until each LLT group ends (MySQL's undo truncates \
       abruptly); vDriver engines retain throughput, keep space low and max \
       chain under ~100; MySQL+vDriver beats vanilla MySQL even before LLTs";
  let runs = List.map (fun e -> (e, Runner.run ~engine:(Common.make_engine e) (cfg e))) engines in
  print_endline "Throughput (commits/s):";
  Common.print_multi_series ~col_name:(fun n -> n) ~every:2.0 runs (fun r -> r.Runner.throughput);
  print_endline "\nVersion space overhead (MiB):";
  Common.print_multi_series ~col_name:(fun n -> n) ~every:2.0 runs (fun r ->
      List.map (fun (t, v) -> (t, v /. (1024. *. 1024.))) r.Runner.version_space);
  print_endline "\nMax valid version chain length (log axis in the paper):";
  Common.print_multi_series ~col_name:(fun n -> n) ~every:2.0 runs (fun r -> r.Runner.max_chain);
  print_endline "";
  let rows =
    List.map
      (fun (name, r) ->
        let p1_before = Common.window r ~lo:2. ~hi:7. in
        let p1_llt = Common.window r ~lo:12. ~hi:21. in
        let p2_before = Common.window r ~lo:32. ~hi:37. in
        let p2_llt = Common.window r ~lo:42. ~hi:51. in
        [
          name;
          Common.fmt_tput p1_before;
          Common.fmt_tput p1_llt;
          Common.fmt_tput p2_before;
          Common.fmt_tput p2_llt;
          Table.fmt_bytes (Runner.peak_space r);
          string_of_int (Runner.peak_chain r);
          string_of_int r.Runner.truncations;
        ])
      runs
  in
  Table.print
    ~header:
      [
        "engine";
        "uni";
        "uni+LLT";
        "skew";
        "skew+LLT";
        "peak-space";
        "peak-chain";
        "undo-trunc";
      ]
    rows
