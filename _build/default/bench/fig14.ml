(* Figure 14: CDF of version chain length under a highly-skewed workload
   with an LLT still alive when the snapshot is taken. *)

let engines = [ "mysql"; "mysql-vdriver"; "pg"; "pg-vdriver" ]

let cfg ename =
  {
    Exp_config.default with
    Exp_config.name = "fig14-" ^ ename;
    duration_s = Common.sec 20.;
    workers = 16;
    schema = Common.small_schema;
    phases = [ { Exp_config.at_s = 0.; pattern = Access.Zipfian 1.2 } ];
    (* The LLT outlives the run so chains are measured while pinned. *)
    llts = [ { Exp_config.start_s = Common.sec 4.; duration_s = Common.sec 100.; count = 1 } ];
  }

let percentiles = [ 0.5; 0.9; 0.99; 0.999; 1.0 ]

let run () =
  Common.section ~figure:"Figure 14" ~title:"CDF of version chain length (skewed, LLT alive)"
    ~expectation:
      "vDriver keeps almost every record's chain short (max ~tens) while the \
       vanilla engines show a wide spectrum reaching thousands";
  let runs = List.map (fun e -> (e, Runner.run ~engine:(Common.make_engine e) (cfg e))) engines in
  let pct_of cdf p =
    let rec find = function
      | [] -> 0
      | (v, f) :: rest -> if f >= p then v else find rest
    in
    find cdf
  in
  let rows =
    List.map
      (fun (name, r) ->
        name
        :: List.map (fun p -> string_of_int (pct_of r.Runner.chain_cdf p)) percentiles)
      runs
  in
  Table.print ~header:([ "engine" ] @ List.map (fun p -> Printf.sprintf "p%g" (p *. 100.)) percentiles) rows;
  print_endline "\nCDF points (chain length -> cumulative fraction of records):";
  List.iter
    (fun (name, r) ->
      let pts =
        (* Thin the CDF for printing: keep ~12 representative points. *)
        let all = r.Runner.chain_cdf in
        let n = List.length all in
        let step = max 1 (n / 12) in
        List.filteri (fun i _ -> i mod step = 0 || i = n - 1) all
      in
      Printf.printf "  %-16s %s\n" name
        (String.concat " "
           (List.map (fun (v, f) -> Printf.sprintf "%d:%.3f" v f) pts)))
    runs
